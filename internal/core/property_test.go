package core

import (
	"slices"
	"testing"
	"testing/quick"

	"pstlbench/internal/exec"
	"pstlbench/internal/native"
)

// quickPolicy builds a parallel policy for property tests. Property checks
// run many iterations, so the pool is shared across them.
func quickPolicy(t *testing.T) Policy {
	t.Helper()
	pool := native.New(4, native.StrategyStealing)
	t.Cleanup(pool.Close)
	// No sequential threshold: even tiny generated inputs take the
	// parallel path so the properties exercise the interesting code.
	return Par(pool).WithGrain(exec.Fine)
}

var quickCfg = &quick.Config{MaxCount: 300}

// Property: Sort produces a sorted permutation of its input.
func TestPropSortIsSortedPermutation(t *testing.T) {
	p := quickPolicy(t)
	f := func(s []int) bool {
		in := slices.Clone(s)
		SortFunc(p, in, intLess)
		if !slices.IsSorted(in) {
			return false
		}
		want := slices.Clone(s)
		slices.Sort(want)
		return equalSlices(in, want)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: parallel Sum equals sequential Sum for any input (integers, so
// associativity is exact).
func TestPropReduceMatchesSequential(t *testing.T) {
	p := quickPolicy(t)
	f := func(s []int32, init int32) bool {
		ints := make([]int64, len(s))
		for i, v := range s {
			ints[i] = int64(v)
		}
		return Sum(p, ints, int64(init)) == Sum(Seq(), ints, int64(init))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: InclusiveScan's last element equals Reduce, and every prefix
// satisfies dst[i] = dst[i-1] + src[i].
func TestPropScanPrefixProperty(t *testing.T) {
	p := quickPolicy(t)
	f := func(s []int32) bool {
		src := make([]int64, len(s))
		for i, v := range s {
			src[i] = int64(v)
		}
		dst := make([]int64, len(src))
		InclusiveSum(p, dst, src)
		if len(src) == 0 {
			return true
		}
		if dst[0] != src[0] {
			return false
		}
		for i := 1; i < len(dst); i++ {
			if dst[i] != dst[i-1]+src[i] {
				return false
			}
		}
		return dst[len(dst)-1] == Sum(Seq(), src, 0)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: ExclusiveScan is InclusiveScan shifted right by one with init
// in front.
func TestPropExclusiveIsShiftedInclusive(t *testing.T) {
	p := quickPolicy(t)
	f := func(s []int32, init32 int32) bool {
		init := int64(init32)
		src := make([]int64, len(s))
		for i, v := range s {
			src[i] = int64(v)
		}
		add := func(a, b int64) int64 { return a + b }
		inc := make([]int64, len(src))
		exc := make([]int64, len(src))
		InclusiveScan(p, inc, src, add)
		ExclusiveScan(p, exc, src, init, add)
		for i := range src {
			want := init
			if i > 0 {
				want = init + inc[i-1]
			}
			if exc[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Find returns the same index as a linear scan.
func TestPropFindFirstEquivalence(t *testing.T) {
	p := quickPolicy(t)
	f := func(s []uint8, v uint8) bool {
		want := -1
		for i, e := range s {
			if e == v {
				want = i
				break
			}
		}
		return Find(p, s, v) == want
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: CountIf(pred) + CountIf(!pred) == len(s).
func TestPropCountPartitionsInput(t *testing.T) {
	p := quickPolicy(t)
	pred := func(v int8) bool { return v%3 == 0 }
	f := func(s []int8) bool {
		a := CountIf(p, s, pred)
		b := CountIf(p, s, func(v int8) bool { return !pred(v) })
		return a+b == len(s)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: StablePartition keeps every element, puts matches first, and
// preserves relative order in both halves.
func TestPropStablePartitionInvariants(t *testing.T) {
	p := quickPolicy(t)
	pred := func(v int16) bool { return v&1 == 0 }
	f := func(s []int16) bool {
		in := slices.Clone(s)
		k := StablePartition(p, in, pred)
		var wantYes, wantNo []int16
		for _, v := range s {
			if pred(v) {
				wantYes = append(wantYes, v)
			} else {
				wantNo = append(wantNo, v)
			}
		}
		return k == len(wantYes) &&
			equalSlices(in[:k], wantYes) &&
			equalSlices(in[k:], wantNo)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge of two sorted inputs is sorted and a permutation of the
// concatenation.
func TestPropMergeSortedPermutation(t *testing.T) {
	p := quickPolicy(t)
	f := func(a, b []int) bool {
		slices.Sort(a)
		slices.Sort(b)
		dst := make([]int, len(a)+len(b))
		Merge(p, dst, a, b, intLess)
		if !slices.IsSorted(dst) {
			return false
		}
		want := append(slices.Clone(a), b...)
		slices.Sort(want)
		return equalSlices(dst, want)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: MinElement/MaxElement agree with Reduce-based extrema.
func TestPropMinMaxAgreeWithReduce(t *testing.T) {
	p := quickPolicy(t)
	f := func(s []int) bool {
		if len(s) == 0 {
			return MinElement(p, s, intLess) == -1
		}
		mi := MinElement(p, s, intLess)
		ma := MaxElement(p, s, intLess)
		lo, hi := s[0], s[0]
		for _, v := range s {
			lo, hi = min(lo, v), max(hi, v)
		}
		return s[mi] == lo && s[ma] == hi
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Reverse twice is the identity.
func TestPropDoubleReverseIdentity(t *testing.T) {
	p := quickPolicy(t)
	f := func(s []int) bool {
		in := slices.Clone(s)
		Reverse(p, in)
		Reverse(p, in)
		return equalSlices(in, s)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Unique leaves no adjacent duplicates and preserves the
// first element of every run.
func TestPropUniqueNoAdjacentDuplicates(t *testing.T) {
	p := quickPolicy(t)
	f := func(s []uint8) bool {
		in := slices.Clone(s)
		n := Unique(p, in)
		for i := 1; i < n; i++ {
			if in[i] == in[i-1] {
				return false
			}
		}
		want := slices.Compact(slices.Clone(s))
		return n == len(want) && equalSlices(in[:n], want)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: set_union cardinality identity
// |A ∪ B| = |A| + |B| − |A ∩ B| holds for multisets.
func TestPropSetCardinalities(t *testing.T) {
	p := quickPolicy(t)
	f := func(a, b []uint8) bool {
		slices.Sort(a)
		slices.Sort(b)
		u := make([]uint8, len(a)+len(b))
		i := make([]uint8, max(len(a), len(b)))
		nu := SetUnion(p, u, a, b, func(x, y uint8) bool { return x < y })
		ni := SetIntersection(p, i, a, b, func(x, y uint8) bool { return x < y })
		return nu == len(a)+len(b)-ni
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
