package core

import (
	"math"
	"testing"

	"pstlbench/internal/exec"
	"pstlbench/internal/native"
)

// Failure injection: panics raised inside algorithm bodies must propagate
// to the caller, complete the sibling workers, and leave the pool usable.

func TestPanicInForEachPropagates(t *testing.T) {
	pool := native.New(4, native.StrategyStealing)
	defer pool.Close()
	p := Par(pool).WithGrain(exec.Fine)
	s := make([]int, 10000)

	func() {
		defer func() {
			if r := recover(); r != "kernel exploded" {
				t.Fatalf("recovered %v", r)
			}
		}()
		ForEachIndex(p, s, func(i int, v *int) {
			if i == 7777 {
				panic("kernel exploded")
			}
			*v = i
		})
	}()

	// Pool still works afterwards.
	Fill(p, s, 3)
	if s[0] != 3 || s[len(s)-1] != 3 {
		t.Fatal("pool unusable after panic")
	}
}

func TestPanicInsideSortComparator(t *testing.T) {
	pool := native.New(4, native.StrategyCentralQueue)
	defer pool.Close()
	p := Par(pool)
	s := make([]float64, 20000)
	Generate(Seq(), s, func(i int) float64 { return float64(20000 - i) })
	calls := 0
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("comparator panic lost")
			}
		}()
		SortFunc(p, s, func(a, b float64) bool {
			calls++
			if calls > 50000 {
				panic("comparator exploded")
			}
			return a < b
		})
	}()
	// The data may be partially sorted, but the pool must be intact.
	if got := Sum(p, s, 0); got != 20000*20001/2 {
		t.Fatalf("elements lost during panicked sort: sum %v", got)
	}
}

func TestPanicInReduceOp(t *testing.T) {
	pool := native.New(3, native.StrategyForkJoin)
	defer pool.Close()
	p := Par(pool).WithGrain(exec.Fine)
	s := make([]int, 5000)
	defer func() {
		if recover() == nil {
			t.Fatal("reduce op panic lost")
		}
	}()
	Reduce(p, s, 0, func(a, b int) int { panic("op exploded") })
}

// NaN handling: a less function over floats is only a strict weak ordering
// without NaNs; the documented contract is that the caller provides a
// total order (e.g. treating NaN as largest). Verify the algorithms behave
// sanely under such a comparator.
func TestNaNAwareSort(t *testing.T) {
	pool := native.New(4, native.StrategyStealing)
	defer pool.Close()
	p := Par(pool)
	nan := math.NaN()
	s := make([]float64, 10000)
	Generate(Seq(), s, func(i int) float64 {
		if i%100 == 0 {
			return nan
		}
		return float64(i % 777)
	})
	nanLast := func(a, b float64) bool {
		// Total order: NaN sorts after everything.
		switch {
		case math.IsNaN(a):
			return false
		case math.IsNaN(b):
			return true
		default:
			return a < b
		}
	}
	SortFunc(p, s, nanLast)
	if !IsSorted(p, s, nanLast) {
		t.Fatal("NaN-aware sort produced an unsorted result")
	}
	// All 100 NaNs at the tail.
	for i := len(s) - 100; i < len(s); i++ {
		if !math.IsNaN(s[i]) {
			t.Fatalf("position %d: %v, want NaN", i, s[i])
		}
	}
	if math.IsNaN(s[len(s)-101]) {
		t.Fatal("NaN escaped the tail")
	}
	// MinElement under the same order finds a real number.
	if idx := MinElement(p, s, nanLast); math.IsNaN(s[idx]) {
		t.Fatal("MinElement picked NaN")
	}
}

func TestGuidedGrainWorksAcrossAlgorithms(t *testing.T) {
	pool := native.New(4, native.StrategyForkJoin)
	defer pool.Close()
	p := Par(pool).WithGrain(exec.Guided)
	s := iota(50000)
	if got := Sum(p, s, 0); got != 50000.0*50001/2 {
		t.Fatalf("guided reduce sum %v", got)
	}
	dst := make([]float64, len(s))
	InclusiveSum(p, dst, s)
	if dst[len(dst)-1] != 50000.0*50001/2 {
		t.Fatal("guided scan wrong")
	}
	if CountIf(p, s, func(v float64) bool { return v > 25000 }) != 25000 {
		t.Fatal("guided count wrong")
	}
}

func TestEmptyEverything(t *testing.T) {
	// Every algorithm must accept empty inputs under a parallel policy.
	pool := native.New(4, native.StrategyStealing)
	defer pool.Close()
	p := Par(pool)
	var s []int
	ForEach(p, s, func(*int) {})
	Sort(p, s)
	Reverse(p, s)
	if Sum(p, s, 0) != 0 || Count(p, s, 1) != 0 || Find(p, s, 1) != -1 {
		t.Fatal("empty aggregates wrong")
	}
	InclusiveSum(p, s, s)
	if StablePartition(p, s, func(int) bool { return true }) != 0 {
		t.Fatal("empty partition wrong")
	}
	if RemoveIf(p, s, func(int) bool { return true }) != 0 {
		t.Fatal("empty remove wrong")
	}
	if Unique(p, s) != 0 {
		t.Fatal("empty unique wrong")
	}
	mn, mx := MinMaxElement(p, s, intLess)
	if mn != -1 || mx != -1 {
		t.Fatal("empty minmax wrong")
	}
}
