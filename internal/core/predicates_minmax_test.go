package core

import (
	"math/rand"
	"testing"
)

func TestAnyAllNoneOf(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := iota(30000)
		big := func(v float64) bool { return v > 29999 }
		neg := func(v float64) bool { return v < 0 }
		pos := func(v float64) bool { return v > 0 }
		if !AnyOf(p, s, big) || AnyOf(p, s, neg) {
			t.Fatal("AnyOf wrong")
		}
		if !AllOf(p, s, pos) || AllOf(p, s, big) {
			t.Fatal("AllOf wrong")
		}
		if !NoneOf(p, s, neg) || NoneOf(p, s, pos) {
			t.Fatal("NoneOf wrong")
		}
		// Vacuous truth on empty input.
		var empty []float64
		if AnyOf(p, empty, pos) || !AllOf(p, empty, pos) || !NoneOf(p, empty, pos) {
			t.Fatal("empty-slice semantics wrong")
		}
	})
}

func TestCountAndCountIf(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(83))
		for _, n := range testSizes {
			s := randomInts(rng, n, 10)
			wantEq, wantIf := 0, 0
			for _, v := range s {
				if v == 3 {
					wantEq++
				}
				if v%2 == 0 {
					wantIf++
				}
			}
			if got := Count(p, s, 3); got != wantEq {
				t.Fatalf("n=%d: Count = %d, want %d", n, got, wantEq)
			}
			if got := CountIf(p, s, func(v int) bool { return v%2 == 0 }); got != wantIf {
				t.Fatalf("n=%d: CountIf = %d, want %d", n, got, wantIf)
			}
		}
	})
}

func TestEqualAndMismatch(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		a := iota(30000)
		b := iota(30000)
		if !Equal(p, a, b) {
			t.Fatal("equal slices reported unequal")
		}
		if got := Mismatch(p, a, b); got != -1 {
			t.Fatalf("Mismatch = %d", got)
		}
		b[12345]++
		if Equal(p, a, b) {
			t.Fatal("unequal slices reported equal")
		}
		if got := Mismatch(p, a, b); got != 12345 {
			t.Fatalf("Mismatch = %d, want 12345", got)
		}
		if Equal(p, a, a[:100]) {
			t.Fatal("length mismatch reported equal")
		}
		if got := Mismatch(p, a[:100], a); got != -1 {
			t.Fatalf("prefix Mismatch = %d", got)
		}
	})
}

func TestEqualFunc(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		a := []float64{1.0, 2.0, 3.0}
		b := []float64{1.04, 1.96, 3.01}
		approx := func(x, y float64) bool { d := x - y; return d < 0.1 && d > -0.1 }
		if !EqualFunc(p, a, b, approx) {
			t.Fatal("approx-equal rejected")
		}
		b[1] = 5
		if EqualFunc(p, a, b, approx) {
			t.Fatal("non-equal accepted")
		}
		if got := MismatchFunc(p, a, b, approx); got != 1 {
			t.Fatalf("MismatchFunc = %d", got)
		}
	})
}

func TestLexicographicalCompare(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		less := func(a, b byte) bool { return a < b }
		cases := []struct {
			a, b string
			want bool
		}{
			{"abc", "abd", true},
			{"abd", "abc", false},
			{"abc", "abc", false},
			{"ab", "abc", true},
			{"abc", "ab", false},
			{"", "a", true},
			{"", "", false},
		}
		for _, c := range cases {
			if got := LexicographicalCompare(p, []byte(c.a), []byte(c.b), less); got != c.want {
				t.Fatalf("lexcmp(%q,%q) = %v", c.a, c.b, got)
			}
		}
		// Large inputs differing late.
		a := make([]byte, 50000)
		b := make([]byte, 50000)
		b[49999] = 1
		if !LexicographicalCompare(p, a, b, less) {
			t.Fatal("large lexcmp wrong")
		}
	})
}

func TestMinMaxElement(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(89))
		for _, n := range testSizes {
			if n == 0 {
				if got := MinElement(p, []int{}, intLess); got != -1 {
					t.Fatal("empty MinElement != -1")
				}
				mn, mx := MinMaxElement(p, []int{}, intLess)
				if mn != -1 || mx != -1 {
					t.Fatal("empty MinMaxElement != (-1,-1)")
				}
				continue
			}
			s := randomInts(rng, n, 1000)
			wantMin, wantMax := 0, 0
			for i, v := range s {
				if v < s[wantMin] {
					wantMin = i
				}
				if v > s[wantMax] {
					wantMax = i
				}
			}
			if got := MinElement(p, s, intLess); s[got] != s[wantMin] {
				t.Fatalf("n=%d: MinElement value %d", n, s[got])
			}
			if got := MaxElement(p, s, intLess); s[got] != s[wantMax] {
				t.Fatalf("n=%d: MaxElement value %d", n, s[got])
			}
		}
	})
}

func TestMinMaxElementTieBreaking(t *testing.T) {
	// C++ semantics: min_element returns the FIRST minimum,
	// minmax_element returns the first min and the LAST max.
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := make([]int, 20000)
		for i := range s {
			s[i] = 5
		}
		if got := MinElement(p, s, intLess); got != 0 {
			t.Fatalf("first-min: got %d", got)
		}
		if got := MaxElement(p, s, intLess); got != 0 {
			t.Fatalf("first-max: got %d", got)
		}
		mn, mx := MinMaxElement(p, s, intLess)
		if mn != 0 || mx != len(s)-1 {
			t.Fatalf("minmax ties: (%d, %d), want (0, %d)", mn, mx, len(s)-1)
		}
	})
}

func TestSetOperations(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		a := []int{1, 2, 2, 3, 5, 8}
		b := []int{2, 3, 4, 8, 9}
		buf := make([]int, len(a)+len(b))

		n := SetUnion(p, buf, a, b, intLess)
		if !equalSlices(buf[:n], []int{1, 2, 2, 3, 4, 5, 8, 9}) {
			t.Fatalf("union = %v", buf[:n])
		}
		n = SetIntersection(p, buf, a, b, intLess)
		if !equalSlices(buf[:n], []int{2, 3, 8}) {
			t.Fatalf("intersection = %v", buf[:n])
		}
		n = SetDifference(p, buf, a, b, intLess)
		if !equalSlices(buf[:n], []int{1, 2, 5}) {
			t.Fatalf("difference = %v", buf[:n])
		}
		n = SetSymmetricDifference(p, buf, a, b, intLess)
		if !equalSlices(buf[:n], []int{1, 2, 4, 5, 9}) {
			t.Fatalf("symmetric difference = %v", buf[:n])
		}
	})
}

func TestIncludes(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		a := []int{1, 2, 2, 3, 5, 8, 13}
		if !Includes(p, a, []int{2, 5}, intLess) {
			t.Fatal("subset rejected")
		}
		if !Includes(p, a, []int{2, 2}, intLess) {
			t.Fatal("multiset subset rejected")
		}
		if Includes(p, a, []int{2, 2, 2}, intLess) {
			t.Fatal("over-multiplicity accepted")
		}
		if Includes(p, a, []int{4}, intLess) {
			t.Fatal("non-subset accepted")
		}
		if !Includes(p, a, nil, intLess) {
			t.Fatal("empty subset rejected")
		}
		if Includes(p, nil, []int{1}, intLess) {
			t.Fatal("empty superset accepted")
		}
	})
}

func TestIncludesLargeMultiset(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(97))
		// a: each value v in [0,100) appears 2..6 times; b samples within
		// multiplicity (should be included) and beyond (should not).
		var a, bOK []int
		for v := 0; v < 2000; v++ {
			k := 2 + rng.Intn(5)
			for i := 0; i < k; i++ {
				a = append(a, v)
			}
			for i := 0; i < min(k, 1+rng.Intn(3)); i++ {
				bOK = append(bOK, v)
			}
		}
		if !Includes(p, a, bOK, intLess) {
			t.Fatal("valid multiset subset rejected")
		}
		bBad := append(append([]int{}, bOK...), 2000) // value absent from a
		if Includes(p, a, bBad, intLess) {
			t.Fatal("invalid subset accepted")
		}
	})
}
