package core

// This file documents the coverage of the C++17 parallel-STL surface
// (the algorithms accepting execution policies, paper Table 1) by this
// package. Function names follow Go conventions; the mapping is:
//
//	C++ algorithm               Go function(s)
//	-------------------------   -----------------------------------------
//	adjacent_difference         AdjacentDifference
//	adjacent_find               AdjacentFind
//	all_of / any_of / none_of   AllOf / AnyOf / NoneOf
//	copy / copy_n               Copy / CopyN
//	copy_if                     CopyIf
//	count / count_if            Count / CountIf
//	equal                       Equal / EqualFunc
//	exclusive_scan              ExclusiveScan
//	fill / fill_n               Fill / FillN
//	find / find_if /
//	  find_if_not               Find / FindIf / FindIfNot
//	find_end / find_first_of    FindEnd / FindFirstOf
//	for_each / for_each_n       ForEach / ForEachIndex / ForEachN
//	generate / generate_n       Generate / GenerateN
//	includes                    Includes
//	inclusive_scan              InclusiveScan / InclusiveSum
//	inplace_merge               InplaceMerge
//	is_heap / is_heap_until     IsHeap / IsHeapUntil
//	is_partitioned              IsPartitioned
//	is_sorted / is_sorted_until IsSorted / IsSortedUntil
//	lexicographical_compare     LexicographicalCompare
//	max_element / min_element   MaxElement / MinElement
//	minmax_element              MinMaxElement
//	merge                       Merge
//	mismatch                    Mismatch / MismatchFunc
//	move                        Move
//	nth_element                 NthElement
//	partial_sort (+_copy)       PartialSort / PartialSortCopy
//	partition (+_copy)          Partition / PartitionCopy
//	partition_point             PartitionPoint
//	reduce                      Reduce / Sum
//	remove / remove_if          Remove / RemoveIf
//	remove_copy_if              RemoveCopyIf
//	replace / replace_if        Replace / ReplaceIf
//	replace_copy                ReplaceCopy
//	reverse / reverse_copy      Reverse / ReverseCopy
//	rotate / rotate_copy        Rotate / RotateCopy
//	search / search_n           Search / SearchN
//	set_difference etc.         SetDifference / SetIntersection /
//	                            SetSymmetricDifference / SetUnion
//	sort / stable_sort          Sort / SortFunc / StableSort
//	stable_partition            StablePartition
//	swap_ranges                 SwapRanges
//	transform                   Transform / TransformBinary
//	transform_exclusive_scan    TransformExclusiveScan
//	transform_inclusive_scan    TransformInclusiveScan
//	transform_reduce            TransformReduce / TransformReduceBinary
//	unique                      Unique
//
// Not applicable in Go (no raw-memory object lifetimes): destroy,
// destroy_n, uninitialized_*. Go's garbage-collected slices make these
// no-ops; callers simply allocate with make.
