package core

import (
	"math/rand"
	"slices"
	"testing"
)

func TestCopyAndCopyN(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		for _, n := range testSizes {
			src := iota(n)
			dst := make([]float64, n)
			Copy(p, dst, src)
			if !equalSlices(dst, src) {
				t.Fatalf("n=%d: copy mismatch", n)
			}
		}
		src := iota(100)
		dst := make([]float64, 100)
		CopyN(p, dst, src, 40)
		if dst[39] != 40 || dst[40] != 0 {
			t.Fatalf("CopyN boundary: %v %v", dst[39], dst[40])
		}
	})
}

func TestCopyPanicsOnShortDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Copy(Seq(), make([]int, 2), make([]int, 3))
}

func TestCopyIfPreservesOrder(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(67))
		for _, n := range testSizes {
			src := randomInts(rng, n, 100)
			even := func(v int) bool { return v%2 == 0 }
			want := []int{}
			for _, v := range src {
				if even(v) {
					want = append(want, v)
				}
			}
			dst := make([]int, n)
			got := CopyIf(p, dst, src, even)
			if got != len(want) || !equalSlices(dst[:got], want) {
				t.Fatalf("n=%d: CopyIf mismatch (got %d, want %d)", n, got, len(want))
			}
		}
	})
}

func TestRemoveCopyIfAndRemoveIf(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(71))
		src := randomInts(rng, 30000, 10)
		odd := func(v int) bool { return v%2 == 1 }
		want := []int{}
		for _, v := range src {
			if !odd(v) {
				want = append(want, v)
			}
		}
		dst := make([]int, len(src))
		n := RemoveCopyIf(p, dst, src, odd)
		if n != len(want) || !equalSlices(dst[:n], want) {
			t.Fatal("RemoveCopyIf mismatch")
		}
		inPlace := slices.Clone(src)
		m := RemoveIf(p, inPlace, odd)
		if m != len(want) || !equalSlices(inPlace[:m], want) {
			t.Fatal("RemoveIf mismatch")
		}
	})
}

func TestRemove(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := []int{1, 2, 3, 2, 4, 2, 5}
		n := Remove(p, s, 2)
		if n != 4 || !equalSlices(s[:n], []int{1, 3, 4, 5}) {
			t.Fatalf("Remove: n=%d s=%v", n, s[:n])
		}
	})
}

func TestUnique(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		cases := []struct {
			in, want []int
		}{
			{nil, nil},
			{[]int{1}, []int{1}},
			{[]int{1, 1, 1}, []int{1}},
			{[]int{1, 2, 3}, []int{1, 2, 3}},
			{[]int{1, 1, 2, 2, 3, 1, 1}, []int{1, 2, 3, 1}},
		}
		for _, c := range cases {
			s := slices.Clone(c.in)
			n := Unique(p, s)
			if n != len(c.want) || !equalSlices(s[:n], c.want) {
				t.Fatalf("Unique(%v) = %v", c.in, s[:n])
			}
		}
		// Large input with runs spanning chunk boundaries.
		big := make([]int, 50000)
		for i := range big {
			big[i] = i / 7
		}
		n := Unique(p, big)
		if n != 50000/7+1 {
			t.Fatalf("Unique runs: n=%d", n)
		}
		for i := 0; i < n; i++ {
			if big[i] != i {
				t.Fatalf("big[%d] = %d", i, big[i])
			}
		}
	})
}

func TestStablePartition(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(73))
		for _, n := range testSizes {
			src := randomInts(rng, n, 100)
			pred := func(v int) bool { return v < 50 }
			var wantYes, wantNo []int
			for _, v := range src {
				if pred(v) {
					wantYes = append(wantYes, v)
				} else {
					wantNo = append(wantNo, v)
				}
			}
			s := slices.Clone(src)
			k := StablePartition(p, s, pred)
			if k != len(wantYes) || !equalSlices(s[:k], wantYes) || !equalSlices(s[k:], wantNo) {
				t.Fatalf("n=%d: stable partition mismatch", n)
			}
			if !IsPartitioned(p, s, pred) {
				t.Fatalf("n=%d: result not partitioned", n)
			}
			if got := PartitionPoint(s, pred); got != k {
				t.Fatalf("n=%d: PartitionPoint=%d want %d", n, got, k)
			}
		}
	})
}

func TestPartitionContract(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(79))
		s := randomInts(rng, 20000, 2)
		zeros := 0
		for _, v := range s {
			if v == 0 {
				zeros++
			}
		}
		pred := func(v int) bool { return v == 0 }
		k := Partition(p, s, pred)
		if k != zeros {
			t.Fatalf("partition point %d, want %d", k, zeros)
		}
		for i := 0; i < k; i++ {
			if s[i] != 0 {
				t.Fatal("non-matching element before partition point")
			}
		}
		for i := k; i < len(s); i++ {
			if s[i] != 1 {
				t.Fatal("matching element after partition point")
			}
		}
	})
}

func TestPartitionCopy(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		src := []int{5, 1, 8, 2, 9, 3}
		yes := make([]int, len(src))
		no := make([]int, len(src))
		ny, nn := PartitionCopy(p, yes, no, src, func(v int) bool { return v < 5 })
		if ny != 3 || nn != 3 {
			t.Fatalf("counts %d %d", ny, nn)
		}
		if !equalSlices(yes[:ny], []int{1, 2, 3}) || !equalSlices(no[:nn], []int{5, 8, 9}) {
			t.Fatalf("yes=%v no=%v", yes[:ny], no[:nn])
		}
	})
}

func TestIsPartitioned(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		pred := func(v int) bool { return v < 0 }
		if !IsPartitioned(p, []int{-3, -1, 2, 5}, pred) {
			t.Fatal("partitioned input rejected")
		}
		if IsPartitioned(p, []int{-3, 2, -1, 5}, pred) {
			t.Fatal("unpartitioned input accepted")
		}
		if !IsPartitioned(p, []int{}, pred) {
			t.Fatal("empty input rejected")
		}
		big := make([]int, 30000)
		for i := range big {
			big[i] = i - 15000
		}
		if !IsPartitioned(p, big, pred) {
			t.Fatal("big partitioned input rejected")
		}
		big[29000] = -1
		if IsPartitioned(p, big, pred) {
			t.Fatal("big unpartitioned input accepted")
		}
	})
}

func TestReverse(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		for _, n := range testSizes {
			s := iota(n)
			Reverse(p, s)
			for i, v := range s {
				if v != float64(n-i) {
					t.Fatalf("n=%d: s[%d] = %v", n, i, v)
				}
			}
		}
	})
}

func TestReverseCopy(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		src := iota(30000)
		dst := make([]float64, len(src))
		ReverseCopy(p, dst, src)
		for i := range dst {
			if dst[i] != src[len(src)-1-i] {
				t.Fatalf("dst[%d] = %v", i, dst[i])
			}
		}
	})
}

func TestSwapRanges(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		a := iota(20000)
		b := make([]float64, len(a))
		SwapRanges(p, a, b)
		for i := range a {
			if a[i] != 0 || b[i] != float64(i+1) {
				t.Fatalf("swap failed at %d", i)
			}
		}
	})
}

func TestRotate(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		for _, n := range []int{0, 1, 5, 30000} {
			for _, mid := range []int{0, 1, n / 3, n} {
				if mid > n {
					continue
				}
				s := make([]int, n)
				for i := range s {
					s[i] = i
				}
				ret := Rotate(p, s, mid)
				if ret != n-mid {
					t.Fatalf("n=%d mid=%d: ret=%d", n, mid, ret)
				}
				for i := range s {
					if s[i] != (i+mid)%max(n, 1) {
						t.Fatalf("n=%d mid=%d: s[%d] = %d", n, mid, i, s[i])
					}
				}
			}
		}
	})
}

func TestRotateCopy(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		src := []int{0, 1, 2, 3, 4}
		dst := make([]int, 5)
		RotateCopy(p, dst, src, 2)
		if !equalSlices(dst, []int{2, 3, 4, 0, 1}) {
			t.Fatalf("RotateCopy = %v", dst)
		}
	})
}

func TestTransform(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		src := iota(25000)
		dst := make([]float64, len(src))
		Transform(p, dst, src, func(v float64) float64 { return v * v })
		for i := 0; i < len(dst); i += 503 {
			if want := src[i] * src[i]; dst[i] != want {
				t.Fatalf("dst[%d] = %v", i, dst[i])
			}
		}
		// Aliased (in-place) transform.
		Transform(p, src, src, func(v float64) float64 { return -v })
		if src[10] != -11 {
			t.Fatalf("aliased transform: %v", src[10])
		}
	})
}

func TestTransformBinary(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		a := iota(20000)
		b := iota(20000)
		dst := make([]float64, len(a))
		TransformBinary(p, dst, a, b, func(x, y float64) float64 { return x + y })
		for i := 0; i < len(dst); i += 997 {
			if dst[i] != 2*float64(i+1) {
				t.Fatalf("dst[%d] = %v", i, dst[i])
			}
		}
	})
}

func TestReplaceFamily(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := []int{1, 2, 1, 3, 1}
		Replace(p, s, 1, 9)
		if !equalSlices(s, []int{9, 2, 9, 3, 9}) {
			t.Fatalf("Replace = %v", s)
		}
		ReplaceIf(p, s, func(v int) bool { return v > 5 }, 0)
		if !equalSlices(s, []int{0, 2, 0, 3, 0}) {
			t.Fatalf("ReplaceIf = %v", s)
		}
		dst := make([]int, len(s))
		ReplaceCopy(p, dst, s, 0, 7)
		if !equalSlices(dst, []int{7, 2, 7, 3, 7}) {
			t.Fatalf("ReplaceCopy = %v", dst)
		}
		if !equalSlices(s, []int{0, 2, 0, 3, 0}) {
			t.Fatal("ReplaceCopy mutated src")
		}
	})
}
