package core

// Copy copies src into dst, possibly in parallel (std::copy). dst must be
// at least as long as src and must not overlap it.
func Copy[T any](p Policy, dst, src []T) {
	if len(dst) < len(src) {
		panic("core.Copy: dst shorter than src")
	}
	n := len(src)
	if !p.parallel(n) {
		copy(dst, src)
		return
	}
	p.ParallelFor(n, func(_, lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// CopyN copies the first n elements of src into dst (std::copy_n).
func CopyN[T any](p Policy, dst, src []T, n int) {
	if n < 0 || n > len(src) {
		panic("core.CopyN: n out of range")
	}
	Copy(p, dst, src[:n])
}

// Move is Copy under Go's value semantics (std::move the algorithm; Go has
// no move construction, so it is an assignment loop).
func Move[T any](p Policy, dst, src []T) { Copy(p, dst, src) }

// CopyIf appends the elements of src satisfying pred to dst[:0], preserving
// their relative order as std::copy_if does, and returns the number of
// elements written. dst must have capacity for every match (len(src) always
// suffices) and must not overlap src.
//
// The parallel version is the classic three-phase stream compaction:
// per-chunk match counts, an exclusive prefix over the counts, then a
// parallel scatter of every chunk to its output offset.
func CopyIf[T any](p Policy, dst, src []T, pred func(T) bool) int {
	n := len(src)
	if !p.parallel(n) {
		w := 0
		dst = dst[:cap(dst)]
		for _, v := range src {
			if pred(v) {
				dst[w] = v
				w++
			}
		}
		return w
	}
	chunks := p.Chunks(n)
	counts := make([]int, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		c := 0
		for _, v := range src[chunks.At(ci).Lo:chunks.At(ci).Hi] {
			if pred(v) {
				c++
			}
		}
		counts[ci] = c
	})
	offsets := make([]int, chunks.Len()+1)
	for ci, c := range counts {
		offsets[ci+1] = offsets[ci] + c
	}
	total := offsets[chunks.Len()]
	if total > cap(dst) {
		panic("core.CopyIf: dst capacity too small")
	}
	dst = dst[:cap(dst)]
	p.ForEachChunk(chunks, func(ci int) {
		w := offsets[ci]
		for _, v := range src[chunks.At(ci).Lo:chunks.At(ci).Hi] {
			if pred(v) {
				dst[w] = v
				w++
			}
		}
	})
	return total
}

// RemoveCopyIf appends the elements of src that do NOT satisfy pred to
// dst[:0] and returns the number written (std::remove_copy_if).
func RemoveCopyIf[T any](p Policy, dst, src []T, pred func(T) bool) int {
	return CopyIf(p, dst, src, func(v T) bool { return !pred(v) })
}

// RemoveIf compacts s in place, keeping only elements that do not satisfy
// pred, and returns the new logical length (std::remove_if + erase). The
// relative order of the kept elements is preserved. The parallel version
// compacts into a temporary and copies back: an in-place parallel scatter
// would let one chunk overwrite elements another chunk has not read yet.
func RemoveIf[T any](p Policy, s []T, pred func(T) bool) int {
	n := len(s)
	if !p.parallel(n) {
		w := 0
		for i := 0; i < n; i++ {
			if !pred(s[i]) {
				s[w] = s[i]
				w++
			}
		}
		return w
	}
	tmp := make([]T, n)
	w := RemoveCopyIf(p, tmp, s, pred)
	Copy(p, s[:w], tmp[:w])
	return w
}

// Remove compacts s in place, dropping elements equal to v, and returns the
// new logical length (std::remove + erase).
func Remove[T comparable](p Policy, s []T, v T) int {
	return RemoveIf(p, s, func(e T) bool { return e == v })
}

// Unique compacts consecutive duplicate elements of s in place and returns
// the new logical length (std::unique + erase).
func Unique[T comparable](p Policy, s []T) int {
	n := len(s)
	if n == 0 {
		return 0
	}
	// An element survives iff it differs from its predecessor (the first
	// always survives); expressed that way, unique is RemoveIf over
	// indices, which parallelizes with the same compaction scheme.
	if !p.parallel(n) {
		w := 1
		for i := 1; i < n; i++ {
			if s[i] != s[w-1] {
				s[w] = s[i]
				w++
			}
		}
		return w
	}
	keep := func(i int) bool { return i == 0 || s[i] != s[i-1] }
	chunks := p.Chunks(n)
	counts := make([]int, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		cnt := 0
		c := chunks.At(ci)
		for i := c.Lo; i < c.Hi; i++ {
			if keep(i) {
				cnt++
			}
		}
		counts[ci] = cnt
	})
	offsets := make([]int, chunks.Len()+1)
	for ci, c := range counts {
		offsets[ci+1] = offsets[ci] + c
	}
	tmp := make([]T, offsets[chunks.Len()])
	p.ForEachChunk(chunks, func(ci int) {
		w := offsets[ci]
		c := chunks.At(ci)
		for i := c.Lo; i < c.Hi; i++ {
			if keep(i) {
				tmp[w] = s[i]
				w++
			}
		}
	})
	Copy(p, s, tmp)
	return len(tmp)
}
