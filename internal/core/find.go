package core

import (
	"sync/atomic"
)

// findBlock is the number of candidate indices a worker examines between
// checks of the shared early-exit bound. It trades cancellation latency
// against synchronization cost — the overhead the paper's X::find results
// make visible.
const findBlock = 1024

// findFirstIndex returns the smallest index i in [0, n) for which match(i)
// is true, or -1 if there is none. In parallel mode, workers publish the
// best index found so far through an atomic bound and abandon regions that
// can no longer improve it.
func findFirstIndex(p Policy, n int, match func(i int) bool) int {
	if n <= 0 {
		return -1
	}
	if !p.parallel(n) {
		for i := 0; i < n; i++ {
			if match(i) {
				return i
			}
		}
		return -1
	}
	var best atomic.Int64
	best.Store(int64(n))
	p.ParallelFor(n, func(_, lo, hi int) {
		for blockLo := lo; blockLo < hi; blockLo += findBlock {
			if int64(blockLo) >= best.Load() {
				return // a better match exists before this chunk
			}
			blockHi := blockLo + findBlock
			if blockHi > hi {
				blockHi = hi
			}
			for i := blockLo; i < blockHi; i++ {
				if match(i) {
					storeMin(&best, int64(i))
					return // first match in a forward scan of the chunk
				}
			}
		}
	})
	if got := best.Load(); got < int64(n) {
		return int(got)
	}
	return -1
}

// storeMin atomically lowers a to v if v is smaller.
func storeMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Find returns the index of the first element of s equal to v, or -1
// (std::find).
func Find[T comparable](p Policy, s []T, v T) int {
	return findFirstIndex(p, len(s), func(i int) bool { return s[i] == v })
}

// FindIf returns the index of the first element satisfying pred, or -1
// (std::find_if).
func FindIf[T any](p Policy, s []T, pred func(T) bool) int {
	return findFirstIndex(p, len(s), func(i int) bool { return pred(s[i]) })
}

// FindIfNot returns the index of the first element not satisfying pred, or
// -1 (std::find_if_not).
func FindIfNot[T any](p Policy, s []T, pred func(T) bool) int {
	return findFirstIndex(p, len(s), func(i int) bool { return !pred(s[i]) })
}

// FindFirstOf returns the index of the first element of s that equals any
// element of set, or -1 (std::find_first_of).
func FindFirstOf[T comparable](p Policy, s, set []T) int {
	if len(set) == 0 {
		return -1
	}
	return findFirstIndex(p, len(s), func(i int) bool {
		for _, w := range set {
			if s[i] == w {
				return true
			}
		}
		return false
	})
}

// AdjacentFind returns the first index i such that pred(s[i], s[i+1]), or
// -1 (std::adjacent_find).
func AdjacentFind[T any](p Policy, s []T, pred func(a, b T) bool) int {
	return findFirstIndex(p, len(s)-1, func(i int) bool { return pred(s[i], s[i+1]) })
}

// Search returns the index of the first occurrence of sub in s, or -1
// (std::search). An empty sub matches at index 0.
func Search[T comparable](p Policy, s, sub []T) int {
	if len(sub) == 0 {
		return 0
	}
	n := len(s) - len(sub) + 1
	return findFirstIndex(p, n, func(i int) bool {
		for j, w := range sub {
			if s[i+j] != w {
				return false
			}
		}
		return true
	})
}

// SearchN returns the index of the first run of count consecutive elements
// equal to v, or -1 (std::search_n). count <= 0 matches at index 0.
func SearchN[T comparable](p Policy, s []T, count int, v T) int {
	if count <= 0 {
		return 0
	}
	n := len(s) - count + 1
	return findFirstIndex(p, n, func(i int) bool {
		for j := 0; j < count; j++ {
			if s[i+j] != v {
				return false
			}
		}
		return true
	})
}

// FindEnd returns the index of the last occurrence of sub in s, or -1
// (std::find_end). An empty sub matches at index len(s).
func FindEnd[T comparable](p Policy, s, sub []T) int {
	if len(sub) == 0 {
		return len(s)
	}
	n := len(s) - len(sub) + 1
	if n <= 0 {
		return -1
	}
	// Search the mirrored index space so the early-exit machinery, which
	// minimizes, finds the maximal match position.
	ri := findFirstIndex(p, n, func(i int) bool {
		pos := n - 1 - i
		for j, w := range sub {
			if s[pos+j] != w {
				return false
			}
		}
		return true
	})
	if ri < 0 {
		return -1
	}
	return n - 1 - ri
}
