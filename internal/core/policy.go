// Package core implements the parallel algorithms of the C++17 standard
// library (the subset supported by pSTL-Bench, Table 1 of the paper) in Go,
// generically over the exec.Pool execution substrate.
//
// Every algorithm takes a Policy as its first argument, mirroring the
// std::execution policy parameter of the C++ parallel STL. The policy
// bundles the execution pool with the partitioning grain and a sequential
// fallback threshold — the paper shows that backends differ substantially
// in all three (e.g. GNU's runtime silently runs sequentially below ~2^10
// elements, TBB auto-partitions into a few chunks per worker, HPX uses a
// fine task decomposition).
//
// Algorithms with early-exit semantics (Find, AnyOf, Mismatch, ...) use a
// shared atomic bound so that workers abandon chunks that can no longer
// contain the answer, mirroring the cancellation behaviour whose cost the
// paper measures for X::find.
package core

import (
	"sync/atomic"
	"time"

	"pstlbench/internal/exec"
)

// GrainSource proposes a chunking policy per loop invocation, given the
// loop's element count and the pool's worker count. Plugging one into a
// Policy (WithGrainSource) overrides the static Grain for every parallel
// loop the policy runs — the hook the adaptive tuner (internal/tune) uses
// to own grain selection without touching algorithm code.
type GrainSource interface {
	Grain(n, workers int) exec.Grain
}

// Policy selects how an algorithm executes, playing the role of
// std::execution::seq / par plus the backend-specific tuning the paper
// studies.
//
// The zero value is a valid sequential policy.
type Policy struct {
	// Pool is the execution substrate. nil means sequential.
	Pool exec.Pool

	// Grain is the chunking policy for parallel loops.
	Grain exec.Grain

	// Grains, when non-nil, overrides Grain: every parallel loop asks it
	// for the grain to use at its own (n, workers) point. Multi-phase
	// algorithms ask once per decomposition, so all phases of one call
	// share a consistent chunk set.
	Grains GrainSource

	// SeqThreshold is the input size below which algorithms fall back to
	// their sequential implementation, as the GNU and TBB runtimes do.
	// 0 means "always parallel when a pool is present".
	SeqThreshold int

	// Cancel, when non-nil, is checked at chunk granularity by every
	// parallel loop the policy runs: once it fires, remaining chunks are
	// skipped and the algorithm returns early with an incomplete result.
	// Callers that cancel must discard the result — Canceled() is the
	// source of truth, mirroring how an interrupted std::find caller must
	// not dereference the returned iterator. Sequential fallbacks are not
	// cancellable; the serving layer always runs cancellable jobs parallel.
	Cancel *exec.Cancel

	// FirstChunkNS, when non-nil, receives the wall-clock UnixNano of the
	// first chunk the policy dispatches (CAS from 0, so only the first
	// writer wins). The serving layer points this at a job span's
	// first-chunk slot to measure scheduler dispatch latency. The check is
	// per dispatch, not per chunk: a nil field costs one pointer test per
	// parallel loop.
	FirstChunkNS *int64
}

// Seq returns the sequential execution policy.
func Seq() Policy { return Policy{} }

// Par returns a parallel policy over the given pool with TBB-like
// auto-partitioning.
func Par(pool exec.Pool) Policy {
	return Policy{Pool: pool, Grain: exec.Auto}
}

// WithGrain returns a copy of the policy using the given grain.
func (p Policy) WithGrain(g exec.Grain) Policy {
	p.Grain = g
	return p
}

// WithGrainSource returns a copy of the policy taking its grain from src
// (nil restores the static Grain).
func (p Policy) WithGrainSource(src GrainSource) Policy {
	p.Grains = src
	return p
}

// WithSeqThreshold returns a copy of the policy using the given sequential
// fallback threshold.
func (p Policy) WithSeqThreshold(n int) Policy {
	p.SeqThreshold = n
	return p
}

// WithCancel returns a copy of the policy whose parallel loops check the
// given cancellation token before every chunk (nil removes the token).
func (p Policy) WithCancel(c *exec.Cancel) Policy {
	p.Cancel = c
	return p
}

// Canceled reports whether the policy's cancellation token has fired; a
// policy without a token is never canceled. Algorithms run under a token
// produce incomplete results once this returns true.
func (p Policy) Canceled() bool { return p.Cancel.Canceled() }

// ShouldParallelize reports whether an input of n elements takes the
// parallel path under this policy — the same gate every core algorithm
// applies before dispatching. Exported so layered executors (the fused
// pipelines of internal/pipeline) make the identical seq-vs-par decision
// and stay element-wise equivalent to the staged composition.
func (p Policy) ShouldParallelize(n int) bool { return p.parallel(n) }

// parallel reports whether an input of n elements should take the parallel
// path under this policy.
func (p Policy) parallel(n int) bool {
	if p.Pool == nil || p.Pool.Workers() < 2 {
		return false
	}
	if n < 2 {
		return false
	}
	return n >= p.SeqThreshold
}

// pool returns the execution pool, substituting the serial pool when none
// is configured.
func (p Policy) pool() exec.Pool {
	if p.Pool == nil {
		return exec.Serial{}
	}
	return p.Pool
}

// workers returns the worker count of the underlying pool.
func (p Policy) workers() int { return p.pool().Workers() }

// grain returns the effective chunking policy for a parallel loop over n
// elements: the GrainSource's proposal when one is plugged in, the static
// Grain otherwise.
func (p Policy) grain(n int) exec.Grain {
	if p.Grains != nil {
		return p.Grains.Grain(n, p.workers())
	}
	return p.Grain
}

// ChunkSet is an index-addressable view of the chunk decomposition of
// [0, n) under a policy: chunk ranges are computed on demand from the grain
// arithmetic (exec.Grain.ChunkAt) instead of materializing a []exec.Range
// per call, keeping the multi-phase algorithms off the allocator for the
// decomposition itself. Exported, together with Chunks/ForEachChunk/
// ParallelFor, as the dispatch surface layered executors build on — the
// fused pipelines of internal/pipeline compile onto exactly this.
type ChunkSet struct {
	grain exec.Grain
	n     int
	w     int
	count int
}

// Len returns the number of chunks in the decomposition.
func (cs ChunkSet) Len() int { return cs.count }

// At returns chunk ci of the decomposition.
func (cs ChunkSet) At(ci int) exec.Range { return cs.grain.ChunkAt(ci, cs.n, cs.w) }

// Chunks returns the chunk decomposition of [0, n) under this policy.
// All multi-phase algorithms (scan, stable partition, copy-if) derive every
// phase from the same decomposition so per-chunk intermediate results line
// up across phases.
func (p Policy) Chunks(n int) ChunkSet {
	w := p.workers()
	g := p.grain(n)
	return ChunkSet{grain: g, n: n, w: w, count: g.ChunkCount(n, w)}
}

// dispatch runs one parallel loop over [0, n) with grain g on the policy's
// pool, threading the cancellation token through pools that support it
// (exec.CancelPool: chunk-granular checks on the zero-allocation dispatch
// path). Pools without native support get the token enforced by a body
// wrapper — same observable semantics, one extra closure per call.
func (p Policy) dispatch(n int, g exec.Grain, body func(worker, lo, hi int)) {
	pl := p.pool()
	if fc := p.FirstChunkNS; fc != nil && atomic.LoadInt64(fc) == 0 {
		inner := body
		body = func(worker, lo, hi int) {
			if atomic.LoadInt64(fc) == 0 {
				atomic.CompareAndSwapInt64(fc, 0, time.Now().UnixNano())
			}
			inner(worker, lo, hi)
		}
	}
	if p.Cancel == nil {
		pl.ForChunks(n, g, body)
		return
	}
	if cp, ok := pl.(exec.CancelPool); ok {
		cp.ForChunksCancel(n, g, p.Cancel, body)
		return
	}
	c := p.Cancel
	pl.ForChunks(n, g, func(worker, lo, hi int) {
		if !c.Canceled() {
			body(worker, lo, hi)
		}
	})
}

// ParallelFor runs body over [0, n) under the policy's effective grain — the
// single-phase parallel loop every algorithm without an explicit chunk
// decomposition uses.
func (p Policy) ParallelFor(n int, body func(worker, lo, hi int)) {
	p.dispatch(n, p.grain(n), body)
}

// ForEachChunk runs body over the chunk set on the policy's pool. It is
// the building block for the multi-phase algorithms, which need an explicit
// chunk decomposition rather than ParallelFor's implicit partition.
func (p Policy) ForEachChunk(chunks ChunkSet, body func(ci int)) {
	p.dispatch(chunks.count, exec.Grain{ChunksPerWorker: 1, MaxChunk: 1}, func(_, lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			body(ci)
		}
	})
}
