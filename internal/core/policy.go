// Package core implements the parallel algorithms of the C++17 standard
// library (the subset supported by pSTL-Bench, Table 1 of the paper) in Go,
// generically over the exec.Pool execution substrate.
//
// Every algorithm takes a Policy as its first argument, mirroring the
// std::execution policy parameter of the C++ parallel STL. The policy
// bundles the execution pool with the partitioning grain and a sequential
// fallback threshold — the paper shows that backends differ substantially
// in all three (e.g. GNU's runtime silently runs sequentially below ~2^10
// elements, TBB auto-partitions into a few chunks per worker, HPX uses a
// fine task decomposition).
//
// Algorithms with early-exit semantics (Find, AnyOf, Mismatch, ...) use a
// shared atomic bound so that workers abandon chunks that can no longer
// contain the answer, mirroring the cancellation behaviour whose cost the
// paper measures for X::find.
package core

import (
	"pstlbench/internal/exec"
)

// GrainSource proposes a chunking policy per loop invocation, given the
// loop's element count and the pool's worker count. Plugging one into a
// Policy (WithGrainSource) overrides the static Grain for every parallel
// loop the policy runs — the hook the adaptive tuner (internal/tune) uses
// to own grain selection without touching algorithm code.
type GrainSource interface {
	Grain(n, workers int) exec.Grain
}

// Policy selects how an algorithm executes, playing the role of
// std::execution::seq / par plus the backend-specific tuning the paper
// studies.
//
// The zero value is a valid sequential policy.
type Policy struct {
	// Pool is the execution substrate. nil means sequential.
	Pool exec.Pool

	// Grain is the chunking policy for parallel loops.
	Grain exec.Grain

	// Grains, when non-nil, overrides Grain: every parallel loop asks it
	// for the grain to use at its own (n, workers) point. Multi-phase
	// algorithms ask once per decomposition, so all phases of one call
	// share a consistent chunk set.
	Grains GrainSource

	// SeqThreshold is the input size below which algorithms fall back to
	// their sequential implementation, as the GNU and TBB runtimes do.
	// 0 means "always parallel when a pool is present".
	SeqThreshold int
}

// Seq returns the sequential execution policy.
func Seq() Policy { return Policy{} }

// Par returns a parallel policy over the given pool with TBB-like
// auto-partitioning.
func Par(pool exec.Pool) Policy {
	return Policy{Pool: pool, Grain: exec.Auto}
}

// WithGrain returns a copy of the policy using the given grain.
func (p Policy) WithGrain(g exec.Grain) Policy {
	p.Grain = g
	return p
}

// WithGrainSource returns a copy of the policy taking its grain from src
// (nil restores the static Grain).
func (p Policy) WithGrainSource(src GrainSource) Policy {
	p.Grains = src
	return p
}

// WithSeqThreshold returns a copy of the policy using the given sequential
// fallback threshold.
func (p Policy) WithSeqThreshold(n int) Policy {
	p.SeqThreshold = n
	return p
}

// parallel reports whether an input of n elements should take the parallel
// path under this policy.
func (p Policy) parallel(n int) bool {
	if p.Pool == nil || p.Pool.Workers() < 2 {
		return false
	}
	if n < 2 {
		return false
	}
	return n >= p.SeqThreshold
}

// pool returns the execution pool, substituting the serial pool when none
// is configured.
func (p Policy) pool() exec.Pool {
	if p.Pool == nil {
		return exec.Serial{}
	}
	return p.Pool
}

// workers returns the worker count of the underlying pool.
func (p Policy) workers() int { return p.pool().Workers() }

// grain returns the effective chunking policy for a parallel loop over n
// elements: the GrainSource's proposal when one is plugged in, the static
// Grain otherwise.
func (p Policy) grain(n int) exec.Grain {
	if p.Grains != nil {
		return p.Grains.Grain(n, p.workers())
	}
	return p.Grain
}

// chunkSet is an index-addressable view of the chunk decomposition of
// [0, n) under a policy: chunk ranges are computed on demand from the grain
// arithmetic (exec.Grain.ChunkAt) instead of materializing a []exec.Range
// per call, keeping the multi-phase algorithms off the allocator for the
// decomposition itself.
type chunkSet struct {
	grain exec.Grain
	n     int
	w     int
	count int
}

// len returns the number of chunks in the decomposition.
func (cs chunkSet) len() int { return cs.count }

// at returns chunk ci of the decomposition.
func (cs chunkSet) at(ci int) exec.Range { return cs.grain.ChunkAt(ci, cs.n, cs.w) }

// chunks returns the chunk decomposition of [0, n) under this policy.
// All multi-phase algorithms (scan, stable partition, copy-if) derive every
// phase from the same decomposition so per-chunk intermediate results line
// up across phases.
func (p Policy) chunks(n int) chunkSet {
	w := p.workers()
	g := p.grain(n)
	return chunkSet{grain: g, n: n, w: w, count: g.ChunkCount(n, w)}
}

// forEachChunk runs body over the chunk set on the policy's pool. It is
// the building block for the multi-phase algorithms, which need an explicit
// chunk decomposition rather than ForChunks' implicit partition.
func (p Policy) forEachChunk(chunks chunkSet, body func(ci int)) {
	pl := p.pool()
	pl.ForChunks(chunks.count, exec.Grain{ChunksPerWorker: 1, MaxChunk: 1}, func(_, lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			body(ci)
		}
	})
}
