package core

// The scans are the textbook two-phase parallel prefix: phase 1 reduces
// every chunk, a short sequential pass turns the chunk sums into chunk
// offsets, and phase 2 rescans every chunk starting from its offset. The
// parallel version therefore performs ~2x the work of the sequential scan,
// which is why the paper's X::inclusive_scan only pays off once the input
// exceeds the last-level cache (Fig. 5).

// InclusiveScan writes the inclusive prefix combination of src into dst
// using op (std::inclusive_scan): dst[i] = src[0] op ... op src[i].
// dst must have the same length as src; dst may be src itself for an
// in-place scan. op must be associative.
func InclusiveScan[T any](p Policy, dst, src []T, op func(a, b T) T) {
	TransformInclusiveScan(p, dst, src, op, func(v T) T { return v })
}

// InclusiveSum is InclusiveScan with addition, the default
// std::inclusive_scan the paper benchmarks.
func InclusiveSum[T Number](p Policy, dst, src []T) {
	InclusiveScan(p, dst, src, func(a, b T) T { return a + b })
}

// TransformInclusiveScan writes the inclusive prefix combination of
// transform(src[i]) into dst (std::transform_inclusive_scan).
func TransformInclusiveScan[T, U any](p Policy, dst []U, src []T, op func(a, b U) U, transform func(T) U) {
	if len(dst) != len(src) {
		panic("core.TransformInclusiveScan: length mismatch")
	}
	n := len(src)
	if n == 0 {
		return
	}
	if !p.parallel(n) {
		acc := transform(src[0])
		dst[0] = acc
		for i := 1; i < n; i++ {
			acc = op(acc, transform(src[i]))
			dst[i] = acc
		}
		return
	}
	chunks := p.Chunks(n)
	sums := make([]U, chunks.Len())
	// Phase 1: reduce every chunk.
	p.ForEachChunk(chunks, func(ci int) {
		c := chunks.At(ci)
		acc := transform(src[c.Lo])
		for i := c.Lo + 1; i < c.Hi; i++ {
			acc = op(acc, transform(src[i]))
		}
		sums[ci] = acc
	})
	// Sequential pass: exclusive prefix of the chunk sums.
	offsets := make([]U, chunks.Len())
	for ci := 1; ci < chunks.Len(); ci++ {
		if ci == 1 {
			offsets[1] = sums[0]
		} else {
			offsets[ci] = op(offsets[ci-1], sums[ci-1])
		}
	}
	// Phase 2: rescan every chunk from its offset.
	p.ForEachChunk(chunks, func(ci int) {
		c := chunks.At(ci)
		var acc U
		if ci == 0 {
			acc = transform(src[c.Lo])
		} else {
			acc = op(offsets[ci], transform(src[c.Lo]))
		}
		dst[c.Lo] = acc
		for i := c.Lo + 1; i < c.Hi; i++ {
			acc = op(acc, transform(src[i]))
			dst[i] = acc
		}
	})
}

// ExclusiveScan writes the exclusive prefix combination of src into dst
// starting from init (std::exclusive_scan): dst[i] = init op src[0] op ...
// op src[i-1]. dst may be src itself.
func ExclusiveScan[T any](p Policy, dst, src []T, init T, op func(a, b T) T) {
	TransformExclusiveScan(p, dst, src, init, op, func(v T) T { return v })
}

// TransformExclusiveScan writes the exclusive prefix combination of
// transform(src[i]) into dst starting from init
// (std::transform_exclusive_scan).
func TransformExclusiveScan[T, U any](p Policy, dst []U, src []T, init U, op func(a, b U) U, transform func(T) U) {
	if len(dst) != len(src) {
		panic("core.TransformExclusiveScan: length mismatch")
	}
	n := len(src)
	if n == 0 {
		return
	}
	if !p.parallel(n) {
		acc := init
		for i := 0; i < n; i++ {
			next := op(acc, transform(src[i]))
			dst[i] = acc
			acc = next
		}
		return
	}
	chunks := p.Chunks(n)
	sums := make([]U, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		c := chunks.At(ci)
		acc := transform(src[c.Lo])
		for i := c.Lo + 1; i < c.Hi; i++ {
			acc = op(acc, transform(src[i]))
		}
		sums[ci] = acc
	})
	offsets := make([]U, chunks.Len())
	offsets[0] = init
	for ci := 1; ci < chunks.Len(); ci++ {
		offsets[ci] = op(offsets[ci-1], sums[ci-1])
	}
	p.ForEachChunk(chunks, func(ci int) {
		c := chunks.At(ci)
		acc := offsets[ci]
		for i := c.Lo; i < c.Hi; i++ {
			next := op(acc, transform(src[i]))
			dst[i] = acc
			acc = next
		}
	})
}

// AdjacentDifference writes dst[0] = src[0] and dst[i] = op(src[i],
// src[i-1]) for i > 0 (std::adjacent_difference). dst must have the same
// length as src. If dst aliases src, the scan runs sequentially, since the
// parallel version would race on neighbouring chunk boundaries.
func AdjacentDifference[T any](p Policy, dst, src []T, op func(cur, prev T) T) {
	if len(dst) != len(src) {
		panic("core.AdjacentDifference: length mismatch")
	}
	n := len(src)
	if n == 0 {
		return
	}
	aliased := &dst[0] == &src[0]
	if aliased || !p.parallel(n) {
		prev := src[0]
		dst[0] = prev
		for i := 1; i < n; i++ {
			cur := src[i]
			dst[i] = op(cur, prev)
			prev = cur
		}
		return
	}
	p.ParallelFor(n, func(_, lo, hi int) {
		if lo == 0 {
			dst[0] = src[0]
			lo = 1
		}
		for i := lo; i < hi; i++ {
			dst[i] = op(src[i], src[i-1])
		}
	})
}
