package core

// Reverse reverses s in place (std::reverse). The parallel version swaps
// mirrored chunks: the iteration space is the first half, and element i
// swaps with element n-1-i.
func Reverse[T any](p Policy, s []T) {
	n := len(s)
	half := n / 2
	if !p.parallel(half) {
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			s[i], s[j] = s[j], s[i]
		}
		return
	}
	p.ParallelFor(half, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			j := n - 1 - i
			s[i], s[j] = s[j], s[i]
		}
	})
}

// ReverseCopy writes the reverse of src into dst (std::reverse_copy). dst
// must be at least as long as src and must not overlap it.
func ReverseCopy[T any](p Policy, dst, src []T) {
	if len(dst) < len(src) {
		panic("core.ReverseCopy: dst shorter than src")
	}
	n := len(src)
	if !p.parallel(n) {
		for i, v := range src {
			dst[n-1-i] = v
		}
		return
	}
	p.ParallelFor(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[n-1-i] = src[i]
		}
	})
}

// SwapRanges exchanges the elements of a and b pairwise (std::swap_ranges).
// a and b must have equal length and must not overlap.
func SwapRanges[T any](p Policy, a, b []T) {
	if len(a) != len(b) {
		panic("core.SwapRanges: length mismatch")
	}
	n := len(a)
	if !p.parallel(n) {
		for i := range a {
			a[i], b[i] = b[i], a[i]
		}
		return
	}
	p.ParallelFor(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i], b[i] = b[i], a[i]
		}
	})
}

// Rotate left-rotates s by mid positions so that s[mid] becomes the first
// element, and returns the new index of the old first element
// (std::rotate). The parallel version rotates through a temporary buffer.
func Rotate[T any](p Policy, s []T, mid int) int {
	n := len(s)
	if mid < 0 || mid > n {
		panic("core.Rotate: mid out of range")
	}
	if mid == 0 || mid == n {
		return n - mid
	}
	if !p.parallel(n) {
		// Triple-reversal rotate: O(n) time, O(1) space.
		reverseSeq(s[:mid])
		reverseSeq(s[mid:])
		reverseSeq(s)
		return n - mid
	}
	tmp := make([]T, n)
	Copy(p, tmp, s[mid:])
	Copy(p, tmp[n-mid:], s[:mid])
	Copy(p, s, tmp)
	return n - mid
}

// RotateCopy writes the left-rotation of src by mid into dst
// (std::rotate_copy). dst must be at least as long as src.
func RotateCopy[T any](p Policy, dst, src []T, mid int) {
	if mid < 0 || mid > len(src) {
		panic("core.RotateCopy: mid out of range")
	}
	if len(dst) < len(src) {
		panic("core.RotateCopy: dst shorter than src")
	}
	Copy(p, dst, src[mid:])
	Copy(p, dst[len(src)-mid:], src[:mid])
}

func reverseSeq[T any](s []T) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
