package core

import (
	"math/rand"
	"testing"

	"pstlbench/internal/exec"
	"pstlbench/internal/native"
)

// policyCase is one cell of the execution-policy test matrix. Every
// algorithm test runs under the sequential policy and under each pool
// strategy with both coarse and fine grains, so a scheduling bug in any
// strategy/grain combination fails the whole suite.
type policyCase struct {
	name string
	mk   func(t *testing.T) Policy
}

func poolPolicy(strategy native.Strategy, workers int, g exec.Grain) func(t *testing.T) Policy {
	return func(t *testing.T) Policy {
		t.Helper()
		p := native.New(workers, strategy)
		t.Cleanup(p.Close)
		return Par(p).WithGrain(g)
	}
}

func policyMatrix() []policyCase {
	return []policyCase{
		{"seq", func(*testing.T) Policy { return Seq() }},
		{"forkjoin/static", poolPolicy(native.StrategyForkJoin, 4, exec.Static)},
		{"stealing/auto", poolPolicy(native.StrategyStealing, 4, exec.Auto)},
		{"centralqueue/fine", poolPolicy(native.StrategyCentralQueue, 4, exec.Fine)},
		{"stealing/fine3w", poolPolicy(native.StrategyStealing, 3, exec.Fine)},
		{"forkjoin/threshold", func(t *testing.T) Policy {
			p := native.New(4, native.StrategyForkJoin)
			t.Cleanup(p.Close)
			return Par(p).WithSeqThreshold(64)
		}},
	}
}

// forEachPolicy runs fn once per policy-matrix cell as a subtest.
func forEachPolicy(t *testing.T, fn func(t *testing.T, p Policy)) {
	t.Helper()
	for _, pc := range policyMatrix() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			fn(t, pc.mk(t))
		})
	}
}

// testSizes are the input sizes exercised by most algorithm tests: empty,
// singleton, sub-chunk, around chunk boundaries, and big enough for real
// parallelism.
var testSizes = []int{0, 1, 2, 3, 7, 63, 64, 65, 1000, 4096, 10000}

func randomInts(rng *rand.Rand, n, max int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = rng.Intn(max)
	}
	return s
}

func iota(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = float64(i + 1)
	}
	return s
}

func equalSlices[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intLess(a, b int) bool { return a < b }
