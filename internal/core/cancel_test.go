package core_test

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"pstlbench/internal/core"
	"pstlbench/internal/exec"
	"pstlbench/internal/native"
)

// TestCancelNeverTearsSilently is the cancellation property test: racing a
// cancel against a running algorithm must never produce a state where the
// result is incomplete but the token claims the run was clean. Either the
// token reports canceled (and the caller discards the result, as the
// serving layer does), or the result is bit-exact complete.
func TestCancelNeverTearsSilently(t *testing.T) {
	pool := native.New(4, native.StrategyStealing)
	defer pool.Close()
	const n = 1 << 16
	data := make([]float64, n)
	for i := range data {
		data[i] = 1
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		tok := &exec.Cancel{}
		p := core.Par(pool).WithCancel(tok)
		delay := time.Duration(rng.Intn(40)) * time.Microsecond
		go func() {
			time.Sleep(delay)
			tok.Cancel()
		}()
		sum := core.Sum(p, data, 0)
		if !tok.Canceled() && sum != n {
			t.Fatalf("trial %d: token clean but Sum=%v, want %v (torn result escaped)",
				trial, sum, float64(n))
		}
	}
}

// TestCancelSortEitherCompleteOrFlagged runs the same property through the
// multi-phase path (Do recursion + chunked merges + copyChunked).
func TestCancelSortEitherCompleteOrFlagged(t *testing.T) {
	pool := native.New(4, native.StrategyStealing)
	defer pool.Close()
	const n = 1 << 15
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64()
		}
		tok := &exec.Cancel{}
		p := core.Par(pool).WithCancel(tok)
		delay := time.Duration(rng.Intn(200)) * time.Microsecond
		go func() {
			time.Sleep(delay)
			tok.Cancel()
		}()
		core.Sort(p, data)
		if !tok.Canceled() {
			for i := 1; i < n; i++ {
				if data[i-1] > data[i] {
					t.Fatalf("trial %d: token clean but output unsorted at %d", trial, i)
				}
			}
		}
	}
}

// TestCancelStopsWork pins that a pre-fired token suppresses the loop body
// entirely, and a mid-loop cancel abandons most of the iteration space.
func TestCancelStopsWork(t *testing.T) {
	pool := native.New(4, native.StrategyStealing)
	defer pool.Close()
	const n = 1 << 16
	data := make([]float64, n)

	tok := &exec.Cancel{}
	tok.Cancel()
	p := core.Par(pool).WithCancel(tok)
	var touched atomic.Int64
	core.ForEach(p, data, func(v *float64) { touched.Add(1) })
	if touched.Load() != 0 {
		t.Fatalf("pre-fired token: body ran %d times", touched.Load())
	}
	if !p.Canceled() {
		t.Fatal("Policy.Canceled() lost the token state")
	}

	tok2 := &exec.Cancel{}
	p2 := core.Par(pool).WithCancel(tok2).WithGrain(exec.Grain{MinChunk: 16, MaxChunk: 16})
	var ran atomic.Int64
	core.ForEach(p2, data, func(v *float64) {
		ran.Add(1)
		tok2.Cancel()
	})
	if got := ran.Load(); got >= n/2 {
		t.Fatalf("mid-loop cancel: %d of %d iterations ran", got, n)
	}
}

// TestCancelFallbackWrapper checks the body-wrapper path used for pools
// without native cancellation support (exec.CancelPool): semantics must
// match, chunk granularity included.
func TestCancelFallbackWrapper(t *testing.T) {
	tok := &exec.Cancel{}
	tok.Cancel()
	p := core.Policy{Pool: plainPool{}, Grain: exec.Auto, Cancel: tok}
	var ran int
	core.ForEach(p, make([]float64, 1024), func(v *float64) { ran++ })
	if ran != 0 {
		t.Fatalf("wrapper path: body ran %d times under a fired token", ran)
	}
}

// plainPool is an exec.Pool that does NOT implement exec.CancelPool,
// forcing Policy.dispatch onto the wrapper path. It embeds Serial but hides
// its ForChunksCancel by redefining the method set through a distinct type.
type plainPool struct{}

func (plainPool) Workers() int { return 2 }
func (plainPool) ForChunks(n int, g exec.Grain, body func(worker, lo, hi int)) {
	g.ForEachChunk(n, 2, func(_ int, r exec.Range) { body(0, r.Lo, r.Hi) })
}
func (plainPool) Do(fns ...func()) {
	for _, fn := range fns {
		fn()
	}
}
