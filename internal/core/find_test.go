package core

import (
	"math/rand"
	"testing"
)

func TestFindMatchesSequentialReference(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(7))
		for _, n := range testSizes {
			s := randomInts(rng, n, 50)
			for trial := 0; trial < 5; trial++ {
				v := rng.Intn(60) // sometimes absent
				want := -1
				for i, e := range s {
					if e == v {
						want = i
						break
					}
				}
				if got := Find(p, s, v); got != want {
					t.Fatalf("n=%d v=%d: Find=%d want %d", n, v, got, want)
				}
			}
		}
	})
}

func TestFindReturnsFirstOccurrence(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := make([]int, 20000)
		// Plant duplicates at several positions; Find must return the
		// earliest even when a later chunk finds its copy first.
		for _, pos := range []int{19999, 15000, 8000, 3001} {
			s[pos] = 9
		}
		if got := Find(p, s, 9); got != 3001 {
			t.Fatalf("Find = %d, want 3001", got)
		}
	})
}

func TestFindPaperScenario(t *testing.T) {
	// The paper's X::find: v = [1..n], search for a random element.
	forEachPolicy(t, func(t *testing.T, p Policy) {
		rng := rand.New(rand.NewSource(42))
		s := iota(1 << 15)
		for trial := 0; trial < 10; trial++ {
			want := rng.Intn(len(s))
			if got := Find(p, s, float64(want+1)); got != want {
				t.Fatalf("Find(%d) = %d", want+1, got)
			}
		}
	})
}

func TestFindIfAndFindIfNot(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := iota(10000)
		if got := FindIf(p, s, func(v float64) bool { return v > 5000 }); got != 5000 {
			t.Fatalf("FindIf = %d", got)
		}
		if got := FindIf(p, s, func(v float64) bool { return v < 0 }); got != -1 {
			t.Fatalf("FindIf absent = %d", got)
		}
		if got := FindIfNot(p, s, func(v float64) bool { return v < 9000 }); got != 8999 {
			t.Fatalf("FindIfNot = %d", got)
		}
		if got := FindIfNot(p, s, func(v float64) bool { return v > 0 }); got != -1 {
			t.Fatalf("FindIfNot all-true = %d", got)
		}
	})
}

func TestFindEmptyAndSingleton(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		if got := Find(p, []int{}, 1); got != -1 {
			t.Fatalf("empty: %d", got)
		}
		if got := Find(p, []int{5}, 5); got != 0 {
			t.Fatalf("singleton hit: %d", got)
		}
		if got := Find(p, []int{5}, 6); got != -1 {
			t.Fatalf("singleton miss: %d", got)
		}
	})
}

func TestFindFirstOf(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := []int{9, 8, 7, 2, 6, 3, 5}
		if got := FindFirstOf(p, s, []int{3, 2}); got != 3 {
			t.Fatalf("FindFirstOf = %d", got)
		}
		if got := FindFirstOf(p, s, []int{100}); got != -1 {
			t.Fatalf("FindFirstOf absent = %d", got)
		}
		if got := FindFirstOf(p, s, nil); got != -1 {
			t.Fatalf("FindFirstOf empty set = %d", got)
		}
	})
}

func TestAdjacentFind(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		eq := func(a, b int) bool { return a == b }
		s := make([]int, 20000)
		for i := range s {
			s[i] = i
		}
		if got := AdjacentFind(p, s, eq); got != -1 {
			t.Fatalf("no adjacent pair expected, got %d", got)
		}
		s[12345] = s[12344]
		if got := AdjacentFind(p, s, eq); got != 12344 {
			t.Fatalf("AdjacentFind = %d, want 12344", got)
		}
		if got := AdjacentFind(p, []int{1}, eq); got != -1 {
			t.Fatalf("singleton: %d", got)
		}
		if got := AdjacentFind(p, []int{}, eq); got != -1 {
			t.Fatalf("empty: %d", got)
		}
	})
}

func TestSearch(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := []byte("the quick brown fox jumps over the lazy dog the end")
		cases := []struct {
			sub  string
			want int
		}{
			{"the", 0},
			{"fox", 16},
			{"end", 48},
			{"cat", -1},
			{"", 0},
			{"the quick brown fox jumps over the lazy dog the end!", -1},
		}
		for _, c := range cases {
			if got := Search(p, s, []byte(c.sub)); got != c.want {
				t.Fatalf("Search(%q) = %d, want %d", c.sub, got, c.want)
			}
		}
	})
}

func TestSearchLargeInput(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := make([]int, 40000)
		sub := []int{1, 2, 3, 4}
		copy(s[33333:], sub)
		if got := Search(p, s, sub); got != 33333 {
			t.Fatalf("Search = %d", got)
		}
	})
}

func TestSearchN(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := []int{1, 0, 0, 1, 0, 0, 0, 1}
		if got := SearchN(p, s, 3, 0); got != 4 {
			t.Fatalf("SearchN = %d, want 4", got)
		}
		if got := SearchN(p, s, 4, 0); got != -1 {
			t.Fatalf("SearchN(4) = %d", got)
		}
		if got := SearchN(p, s, 0, 0); got != 0 {
			t.Fatalf("SearchN(0) = %d", got)
		}
	})
}

func TestFindEnd(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := []int{1, 2, 3, 1, 2, 3, 1, 2}
		if got := FindEnd(p, s, []int{1, 2, 3}); got != 3 {
			t.Fatalf("FindEnd = %d, want 3", got)
		}
		if got := FindEnd(p, s, []int{1, 2}); got != 6 {
			t.Fatalf("FindEnd trailing = %d, want 6", got)
		}
		if got := FindEnd(p, s, []int{7}); got != -1 {
			t.Fatalf("FindEnd absent = %d", got)
		}
		if got := FindEnd(p, s, nil); got != len(s) {
			t.Fatalf("FindEnd empty = %d", got)
		}
		if got := FindEnd(p, []int{1}, []int{1, 2}); got != -1 {
			t.Fatalf("FindEnd longer-sub = %d", got)
		}
	})
}
