package core

// IsPartitioned reports whether s is partitioned by pred: every element
// satisfying pred appears before every element that does not
// (std::is_partitioned).
func IsPartitioned[T any](p Policy, s []T, pred func(T) bool) bool {
	first := FindIfNot(p, s, pred)
	if first < 0 {
		return true
	}
	return NoneOf(p, s[first:], pred)
}

// PartitionPoint returns the index of the first element that does not
// satisfy pred in a partitioned slice (std::partition_point). It is a
// binary search and therefore sequential.
func PartitionPoint[T any](s []T, pred func(T) bool) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pred(s[mid]) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// StablePartition rearranges s so that every element satisfying pred
// precedes every element that does not, preserving relative order within
// both groups, and returns the partition point (std::stable_partition).
// The parallel version is the standard two-stream compaction into a
// temporary buffer.
func StablePartition[T any](p Policy, s []T, pred func(T) bool) int {
	n := len(s)
	if !p.parallel(n) {
		tmp := make([]T, 0, n)
		w := 0
		for _, v := range s {
			if pred(v) {
				s[w] = v
				w++
			} else {
				tmp = append(tmp, v)
			}
		}
		copy(s[w:], tmp)
		return w
	}
	tmp := make([]T, n)
	k := CopyIf(p, tmp, s, pred)
	RemoveCopyIf(p, tmp[k:k:n], s, pred)
	Copy(p, s, tmp)
	return k
}

// Partition rearranges s so that every element satisfying pred precedes
// every element that does not and returns the partition point
// (std::partition). Order within the groups is not specified; this
// implementation delegates to StablePartition, which also satisfies the
// weaker contract.
func Partition[T any](p Policy, s []T, pred func(T) bool) int {
	return StablePartition(p, s, pred)
}

// PartitionCopy splits src into the elements satisfying pred (written to
// yes[:0]) and the rest (written to no[:0]), preserving order, and returns
// both counts (std::partition_copy). yes and no must each have capacity for
// len(src) elements in the worst case.
func PartitionCopy[T any](p Policy, yes, no, src []T, pred func(T) bool) (nYes, nNo int) {
	nYes = CopyIf(p, yes, src, pred)
	nNo = RemoveCopyIf(p, no, src, pred)
	return nYes, nNo
}
