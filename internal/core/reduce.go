package core

// Reduce combines all elements of s with op, starting from init
// (std::reduce). op must be associative; as with std::reduce, the
// combination order is unspecified in parallel mode, but it is
// deterministic for a fixed policy: per-chunk partials are folded in chunk
// order.
func Reduce[T any](p Policy, s []T, init T, op func(a, b T) T) T {
	return TransformReduce(p, s, init, op, func(v T) T { return v })
}

// Sum returns init plus the sum of all elements of s, the common
// std::reduce(par, v.begin(), v.end()) case the paper benchmarks.
func Sum[T Number](p Policy, s []T, init T) T {
	return Reduce(p, s, init, func(a, b T) T { return a + b })
}

// Number is the constraint for the arithmetic convenience wrappers.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// TransformReduce applies transform to every element and reduces the
// results with op starting from init (std::transform_reduce, unary form).
func TransformReduce[T, U any](p Policy, s []T, init U, op func(a, b U) U, transform func(T) U) U {
	n := len(s)
	if !p.parallel(n) {
		acc := init
		for _, e := range s {
			acc = op(acc, transform(e))
		}
		return acc
	}
	chunks := p.Chunks(n)
	partial := make([]U, chunks.Len())
	hasVal := make([]bool, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		c := chunks.At(ci)
		if c.Empty() {
			return
		}
		acc := transform(s[c.Lo])
		for i := c.Lo + 1; i < c.Hi; i++ {
			acc = op(acc, transform(s[i]))
		}
		partial[ci] = acc
		hasVal[ci] = true
	})
	acc := init
	for ci := range partial {
		if hasVal[ci] {
			acc = op(acc, partial[ci])
		}
	}
	return acc
}

// TransformReduceBinary applies transform pairwise to a and b and reduces
// with op starting from init (std::transform_reduce, binary form — the
// parallel inner product). a and b must have equal length.
func TransformReduceBinary[T, V, U any](p Policy, a []T, b []V, init U, op func(x, y U) U, transform func(T, V) U) U {
	if len(a) != len(b) {
		panic("core.TransformReduceBinary: length mismatch")
	}
	n := len(a)
	if !p.parallel(n) {
		acc := init
		for i := range a {
			acc = op(acc, transform(a[i], b[i]))
		}
		return acc
	}
	chunks := p.Chunks(n)
	partial := make([]U, chunks.Len())
	hasVal := make([]bool, chunks.Len())
	p.ForEachChunk(chunks, func(ci int) {
		c := chunks.At(ci)
		if c.Empty() {
			return
		}
		acc := transform(a[c.Lo], b[c.Lo])
		for i := c.Lo + 1; i < c.Hi; i++ {
			acc = op(acc, transform(a[i], b[i]))
		}
		partial[ci] = acc
		hasVal[ci] = true
	})
	acc := init
	for ci := range partial {
		if hasVal[ci] {
			acc = op(acc, partial[ci])
		}
	}
	return acc
}
