// Package gpusim models the NVC-CUDA backend: Thrust kernels on a CUDA
// device with unified memory.
//
// HARDWARE SUBSTITUTION: the paper's Mach D (Tesla T4) and Mach E (Ampere
// A2) are modeled from Table 2 (core counts, frequencies, measured device
// bandwidth) plus PCIe-generation link bandwidths. The model captures the
// three effects Section 5.8 reports: (1) kernel launch cost makes small
// problems slower on the GPU than even a sequential CPU; (2) unified-memory
// page migration dominates unless the kernel's computational intensity is
// high; (3) chaining calls that keep data resident on the device removes
// the transfer bottleneck entirely (Figure 9).
package gpusim

import (
	"math"

	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
	"pstlbench/internal/skeleton"
)

// Options configures one simulated GPU invocation.
type Options struct {
	// TransferBack forces a device-to-host transfer of the result data
	// after the call (the paper's Figures 8/9a force this to expose the
	// communication cost).
	TransferBack bool
	// DataResident marks the input as already migrated to the device by
	// a previous chained call (Figure 9b).
	DataResident bool
}

// Breakdown reports where the time of one invocation went.
type Breakdown struct {
	HostToDevice float64
	Kernel       float64
	DeviceToHost float64
}

// Total returns the invocation wall time.
func (b Breakdown) Total() float64 { return b.HostToDevice + b.Kernel + b.DeviceToHost }

// migrationBatch is the unified-memory fault granularity (bytes): the
// driver migrates 2 MiB batches on access.
const migrationBatch = 2 << 20

// kernelPasses returns the number of kernel launches and the device-memory
// traffic multiple (array passes) of a Thrust algorithm.
func kernelPasses(op backend.Op) (launches int, passes float64) {
	switch op {
	case backend.OpForEach:
		return 1, 2 // read + write
	case backend.OpFind:
		return 1, 1
	case backend.OpReduce:
		return 2, 1 // partial + final reduction
	case backend.OpInclusiveScan:
		return 3, 3 // Thrust's scan: reduce, scan-of-sums, rescan
	case backend.OpSort:
		return 8, 8 // radix sort passes (32-bit keys, 4-bit digits)
	case backend.OpTransform, backend.OpCopy:
		return 1, 2
	case backend.OpCount, backend.OpMinMax:
		return 2, 1
	default:
		return 1, 2
	}
}

// EffectiveKit models the paper's "volatile is ignored" quirk (Section
// 5.8): targeting the GPU, nvc++ removes the volatile k_it loop entirely
// for int, removes it for double when k_it < 65001 (the magic number), and
// never removes it for 32-bit float.
func EffectiveKit(elemBytes, kit int) int {
	if elemBytes == 8 && kit < 65001 {
		return 1
	}
	return kit
}

// Run simulates one invocation of op on the device and returns its timing
// breakdown.
func Run(gpu *machine.GPU, w skeleton.Workload, opts Options) Breakdown {
	if gpu == nil {
		panic("gpusim: machine has no GPU")
	}
	if w.N == 0 {
		return Breakdown{}
	}
	bytes := float64(w.N) * float64(w.ElemBytes)
	var br Breakdown

	// Host -> device: demand paging at fault-limited link speed.
	if !opts.DataResident {
		batches := math.Ceil(bytes / migrationBatch)
		br.HostToDevice = bytes/(gpu.LinkBW*1e9*gpu.FaultBWFactor) + batches*gpu.PageFaultLatency
	}

	launches, passes := kernelPasses(w.Op)

	// Compute side: one fused op per CUDA core per cycle; for for_each
	// the k_it loop body is ~2 device ops per iteration.
	opsPerElem := 2.0
	if w.Op == backend.OpForEach {
		opsPerElem = 2 * float64(EffectiveKit(w.ElemBytes, w.Kit))
	}
	deviceRate := float64(gpu.SMs*gpu.CoresPerSM) * gpu.FreqGHz * 1e9
	compute := float64(w.N) * opsPerElem / deviceRate
	// Small grids cannot fill the device: below one thread per CUDA
	// core the achieved rate degrades proportionally.
	if occ := float64(w.N) / float64(gpu.SMs*gpu.CoresPerSM*8); occ < 1 {
		compute /= math.Max(occ, 1.0/64)
	}
	mem := bytes * passes / (gpu.DeviceBW * 1e9)
	br.Kernel = float64(launches)*gpu.LaunchLatency + math.Max(compute, mem)

	// Device -> host: the paper's transfer experiments force the host to
	// touch the whole array between calls, faulting every page back, so
	// the next call pays the host-to-device migration again. The
	// fault-limited link serves the write-back too.
	if opts.TransferBack {
		batches := math.Ceil(bytes / migrationBatch)
		br.DeviceToHost = bytes/(gpu.LinkBW*1e9*gpu.FaultBWFactor) + batches*gpu.PageFaultLatency
	}
	return br
}
