package gpusim

import (
	"testing"

	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
	"pstlbench/internal/skeleton"
)

func wl(op backend.Op, n int64, elemBytes, kit int) skeleton.Workload {
	return skeleton.Workload{Op: op, N: n, ElemBytes: elemBytes, Kit: kit, HitFrac: 0.5}
}

func TestVolatileQuirk(t *testing.T) {
	// Section 5.8: targeting the GPU, the volatile loop is removed for
	// double below 65001 iterations, never for float.
	if EffectiveKit(8, 1000) != 1 {
		t.Error("double k_it=1000 should collapse to 1")
	}
	if EffectiveKit(8, 65000) != 1 {
		t.Error("double k_it=65000 should collapse (below the magic number)")
	}
	if EffectiveKit(8, 65001) != 65001 {
		t.Error("double k_it=65001 must survive")
	}
	if EffectiveKit(4, 1000) != 1000 {
		t.Error("float k_it must never collapse")
	}
}

func TestTransferDominatesLowIntensity(t *testing.T) {
	gpu := machine.MachD().GPU
	br := Run(gpu, wl(backend.OpForEach, 1<<26, 4, 1), Options{TransferBack: true})
	if br.HostToDevice < br.Kernel*5 {
		t.Errorf("H2D (%v) should dominate the kernel (%v) at k_it=1", br.HostToDevice, br.Kernel)
	}
	if br.DeviceToHost == 0 {
		t.Error("forced transfer back missing")
	}
}

func TestComputeDominatesHighIntensity(t *testing.T) {
	gpu := machine.MachD().GPU
	br := Run(gpu, wl(backend.OpForEach, 1<<26, 4, 100000), Options{TransferBack: true})
	if br.Kernel < br.HostToDevice {
		t.Errorf("kernel (%v) should dominate transfers (%v) at k_it=1e5", br.Kernel, br.HostToDevice)
	}
}

func TestResidentDataSkipsTransfers(t *testing.T) {
	gpu := machine.MachE().GPU
	w := wl(backend.OpReduce, 1<<26, 4, 1)
	with := Run(gpu, w, Options{TransferBack: true})
	resident := Run(gpu, w, Options{DataResident: true})
	if resident.HostToDevice != 0 || resident.DeviceToHost != 0 {
		t.Error("resident run still transfers")
	}
	if with.Total() < 5*resident.Total() {
		t.Errorf("chaining should pay off by a large factor: %v vs %v", with.Total(), resident.Total())
	}
}

func TestKernelLaunchFloorsSmallProblems(t *testing.T) {
	gpu := machine.MachD().GPU
	small := Run(gpu, wl(backend.OpForEach, 64, 4, 1), Options{DataResident: true})
	if small.Kernel < gpu.LaunchLatency {
		t.Errorf("kernel time %v below launch latency %v", small.Kernel, gpu.LaunchLatency)
	}
	// Doubling a tiny problem barely changes the time (launch-bound).
	small2 := Run(gpu, wl(backend.OpForEach, 128, 4, 1), Options{DataResident: true})
	if small2.Kernel > small.Kernel*1.5 {
		t.Errorf("launch-bound regime not flat: %v vs %v", small.Kernel, small2.Kernel)
	}
}

func TestDeviceBandwidthBoundsBigProblems(t *testing.T) {
	gpu := machine.MachD().GPU // 264 GB/s
	n := int64(1) << 28        // 1 GiB of floats
	br := Run(gpu, wl(backend.OpReduce, n, 4, 1), Options{DataResident: true})
	minTime := float64(n) * 4 / (gpu.DeviceBW * 1e9)
	if br.Kernel < minTime {
		t.Errorf("kernel %v beats the device bandwidth floor %v", br.Kernel, minTime)
	}
}

func TestT4FasterThanA2(t *testing.T) {
	// 264 vs 172 GB/s: the T4 wins memory-bound kernels (Fig. 8's 23.5x
	// vs 13.3x ordering).
	w := wl(backend.OpReduce, 1<<27, 4, 1)
	t4 := Run(machine.MachD().GPU, w, Options{DataResident: true})
	a2 := Run(machine.MachE().GPU, w, Options{DataResident: true})
	if t4.Kernel >= a2.Kernel {
		t.Errorf("T4 (%v) should beat A2 (%v)", t4.Kernel, a2.Kernel)
	}
}

func TestSortNeedsMultiplePasses(t *testing.T) {
	w := wl(backend.OpSort, 1<<24, 4, 1)
	r := wl(backend.OpReduce, 1<<24, 4, 1)
	gpu := machine.MachD().GPU
	sortT := Run(gpu, w, Options{DataResident: true})
	redT := Run(gpu, r, Options{DataResident: true})
	if sortT.Kernel < 3*redT.Kernel {
		t.Errorf("radix sort (%v) should cost several reduce passes (%v)", sortT.Kernel, redT.Kernel)
	}
}

func TestZeroN(t *testing.T) {
	if br := Run(machine.MachD().GPU, wl(backend.OpReduce, 0, 4, 1), Options{}); br.Total() != 0 {
		t.Error("N=0 should be free")
	}
}

func TestNilGPUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Run(nil, wl(backend.OpReduce, 8, 4, 1), Options{})
}
