package native

import (
	"fmt"

	"pstlbench/internal/machine"
)

// Topology maps pool workers onto NUMA nodes (and optionally sockets) so
// victim selection can prefer nearby queues. The zero value means "flat":
// no locality information, every victim is equally close, and all steals
// are reported as local — the pre-topology behavior.
//
// The paper's Table 5/6 knee is driven by steals dragging first-touched
// data across the Zen fabric; a topology lets the pool scan same-node
// victims (randomized within the node) before same-socket ones, and those
// before fully remote ones, the locality-ordered stealing HPX uses to
// close that gap.
type Topology struct {
	// Nodes[w] is the NUMA node of worker w. Required (non-nil) for a
	// non-flat topology; length must equal the pool's worker count.
	Nodes []int
	// Sockets[w] is the socket of worker w. Optional: nil places every
	// worker on one socket, collapsing the middle tier.
	Sockets []int
}

// flat reports whether the topology carries no locality information.
func (t Topology) flat() bool { return t.Nodes == nil }

func (t Topology) socketOf(w int) int {
	if t.Sockets == nil {
		return 0
	}
	return t.Sockets[w]
}

// TopologyFromMachine pins workers compactly onto the machine's cores in
// ID order (worker w -> core w, wrapping when workers exceed cores), the
// OMP_PLACES=cores-style placement the paper benchmarks under, and returns
// the induced worker topology.
func TopologyFromMachine(m *machine.Machine, workers int) Topology {
	if workers < 1 {
		workers = 1
	}
	t := Topology{Nodes: make([]int, workers), Sockets: make([]int, workers)}
	for w := 0; w < workers; w++ {
		core := w % m.Cores
		t.Nodes[w] = m.NodeOf(core)
		t.Sockets[w] = m.SocketOf(core)
	}
	return t
}

// SplitTopology is a synthetic topology dividing workers into the given
// number of consecutive, equal-as-possible NUMA nodes on one socket. It is
// the topology used by tests and benchmarks on hosts whose real layout is
// unknown: steal locality is then purely a property of worker IDs.
func SplitTopology(workers, nodes int) Topology {
	if workers < 1 {
		workers = 1
	}
	if nodes < 1 {
		nodes = 1
	}
	if nodes > workers {
		nodes = workers
	}
	t := Topology{Nodes: make([]int, workers)}
	for w := 0; w < workers; w++ {
		t.Nodes[w] = w * nodes / workers
	}
	return t
}

// stealOrder is one scanner's precomputed victim list: every other worker,
// nearest tier first (same node, then same socket, then remote), with
// tiers[k] the end offset of tier k within victims. Scans randomize the
// start within each tier but never visit a farther tier before exhausting
// a nearer one. Flat pools have a single tier holding everyone.
type stealOrder struct {
	victims []int32
	tiers   []int
}

// buildStealOrders precomputes the victim order for every scanner: worker
// ids 0..workers-1 plus the caller pseudo-worker (id == workers), which is
// assumed co-located with worker 0. Precomputing keeps the hot steal path
// allocation-free.
func buildStealOrders(workers int, t Topology) []stealOrder {
	ords := make([]stealOrder, workers+1)
	for id := 0; id <= workers; id++ {
		ref := id
		if id == workers {
			ref = 0
		}
		var near, mid, far []int32
		for v := 0; v < workers; v++ {
			if v == id {
				continue
			}
			switch {
			case t.flat() || t.Nodes[v] == t.Nodes[ref]:
				near = append(near, int32(v))
			case t.socketOf(v) == t.socketOf(ref):
				mid = append(mid, int32(v))
			default:
				far = append(far, int32(v))
			}
		}
		victims := make([]int32, 0, len(near)+len(mid)+len(far))
		victims = append(victims, near...)
		victims = append(victims, mid...)
		victims = append(victims, far...)
		if t.flat() {
			ords[id] = stealOrder{victims: victims, tiers: []int{len(victims)}}
			continue
		}
		ords[id] = stealOrder{
			victims: victims,
			tiers:   []int{len(near), len(near) + len(mid), len(victims)},
		}
	}
	return ords
}

// validateTopology panics when a non-flat topology does not cover the
// worker count.
func validateTopology(t Topology, workers int) {
	if t.flat() {
		if t.Sockets != nil {
			panic("native: Topology.Sockets set without Topology.Nodes")
		}
		return
	}
	if len(t.Nodes) != workers {
		panic(fmt.Sprintf("native: topology covers %d workers, pool has %d", len(t.Nodes), workers))
	}
	if t.Sockets != nil && len(t.Sockets) != workers {
		panic(fmt.Sprintf("native: topology sockets cover %d workers, pool has %d", len(t.Sockets), workers))
	}
}
