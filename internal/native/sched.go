package native

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pstlbench/internal/counters"
	"pstlbench/internal/trace"
)

// SchedStats is a snapshot of the pool's scheduling counters, mirroring the
// scheduler fields of counters.Set so native runs and the simulator report
// comparable statistics.
type SchedStats struct {
	// LocalSteals counts work acquired from somewhere other than the
	// worker's own queues — deque steals, injector pops, inbox raids, and
	// band half-steals inside stealing loops — where the victim shared the
	// thief's NUMA node. Flat pools (no topology) report every steal here;
	// injector pops are always local (a shared queue has no home node).
	LocalSteals uint64
	// RemoteSteals counts steals whose victim lived on a different NUMA
	// node than the thief — the steals that drag first-touched data across
	// the fabric.
	RemoteSteals uint64
	// Parks counts blocking events: workers parking on their semaphore and
	// callers parking on a job's completion after their spin budget.
	Parks uint64
	// Wakeups counts park tokens delivered to sleeping workers.
	Wakeups uint64
	// EmptySpins counts scavenging rounds that found every queue empty.
	EmptySpins uint64
}

// Steals returns the total steal count regardless of locality.
func (s SchedStats) Steals() uint64 { return s.LocalSteals + s.RemoteSteals }

// Add accumulates o into s.
func (s *SchedStats) Add(o SchedStats) {
	s.LocalSteals += o.LocalSteals
	s.RemoteSteals += o.RemoteSteals
	s.Parks += o.Parks
	s.Wakeups += o.Wakeups
	s.EmptySpins += o.EmptySpins
}

// Sub returns s - o, for differencing two snapshots around a region of
// interest (the native analogue of the Likwid marker bracketing).
func (s SchedStats) Sub(o SchedStats) SchedStats {
	return SchedStats{
		LocalSteals:  s.LocalSteals - o.LocalSteals,
		RemoteSteals: s.RemoteSteals - o.RemoteSteals,
		Parks:        s.Parks - o.Parks,
		Wakeups:      s.Wakeups - o.Wakeups,
		EmptySpins:   s.EmptySpins - o.EmptySpins,
	}
}

// Counters maps the stats onto the scheduler fields of a counters.Set, so
// native runs and simulated runs (simexec) report through the same type.
func (s SchedStats) Counters() counters.Set {
	return counters.Set{
		LocalSteals:  float64(s.LocalSteals),
		RemoteSteals: float64(s.RemoteSteals),
		Parks:        float64(s.Parks),
		Wakeups:      float64(s.Wakeups),
		EmptySpins:   float64(s.EmptySpins),
	}
}

// schedCounters is one cache-line-padded bundle of counters. Workers own
// one each (index = worker id); callers share a trailing bundle.
type schedCounters struct {
	localSteals  atomic.Uint64
	remoteSteals atomic.Uint64
	parks        atomic.Uint64
	wakeups      atomic.Uint64
	emptySpins   atomic.Uint64
	_            [3]uint64 // pad to a cache line to avoid false sharing
}

// noteSteal records one steal, classified by victim locality.
func (c *schedCounters) noteSteal(remote bool) {
	if remote {
		c.remoteSteals.Add(1)
	} else {
		c.localSteals.Add(1)
	}
}

// worker is the per-worker scheduling state.
type worker struct {
	dq     wsDeque
	inbox  inbox
	parked atomic.Bool
	park   chan struct{} // capacity 1; a token is only sent after unparking CAS
	rng    uint64        // xorshift state, owner goroutine only
}

// inbox is a small mutex-guarded MPSC mailbox for task words submitted to a
// specific worker (pinned fork-join parts, initial stealing bands). The
// owner drains it into its deque; thieves may raid it as a last resort so a
// worker blocked in nested waiting cannot strand pinned work. The mutex is
// only on the submission path (per ForChunks call, not per chunk).
type inbox struct {
	mu   sync.Mutex
	n    atomic.Int32
	buf  []uint64
	head int
}

func (in *inbox) put(w uint64) {
	in.mu.Lock()
	if in.head == len(in.buf) {
		in.buf = in.buf[:0]
		in.head = 0
	}
	in.buf = append(in.buf, w)
	in.n.Add(1)
	in.mu.Unlock()
}

func (in *inbox) take() (uint64, bool) {
	if in.n.Load() == 0 {
		return 0, false
	}
	in.mu.Lock()
	if in.head == len(in.buf) {
		in.mu.Unlock()
		return 0, false
	}
	w := in.buf[in.head]
	in.head++
	in.n.Add(-1)
	in.mu.Unlock()
	return w, true
}

// spinRounds is the number of full empty scavenging sweeps a worker or
// waiter performs (yielding between sweeps) before parking. Each sweep
// already polls every queue in the pool, so a small budget suffices; long
// budgets burn the CPU the very workers we are waiting for would use.
const spinRounds = 4

// rand returns a pseudo-random value for victim selection. Worker slots use
// an owner-local xorshift; the caller pseudo-worker (id == len(workers))
// shares an atomic splitmix counter, finalized through mix64 — the raw
// additive counter would make rand%n cycle victim starts in a fixed
// arithmetic pattern.
func (p *Pool) rand(worker int) uint64 {
	if worker < len(p.ws) {
		x := p.ws[worker].rng
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p.ws[worker].rng = x
		return x
	}
	return mix64(p.callerRng.Add(0x9E3779B97F4A7C15))
}

func (p *Pool) counters(worker int) *schedCounters {
	if worker < len(p.ws) {
		return &p.stats[worker]
	}
	return &p.stats[len(p.ws)]
}

// tbuf returns the worker's trace ring, or nil on an untraced pool — the
// nil result short-circuits every record call to an inlined pointer check.
func (p *Pool) tbuf(worker int) *trace.Buf {
	if p.tbufs == nil {
		return nil
	}
	if worker >= len(p.tbufs) {
		worker = len(p.tbufs) - 1
	}
	return p.tbufs[worker]
}

// noteStealEvent records a steal instant on the thief's track. victim is
// the worker (or band home) the work came from, -1 for the shared injector.
func (p *Pool) noteStealEvent(tb *trace.Buf, victim int, remote bool) {
	if tb == nil {
		return
	}
	tier := int64(trace.TierLocal)
	if remote {
		tier = trace.TierRemote
	}
	tb.Instant(trace.KindSteal, p.tr.Now(), int64(victim), tier)
}

// remoteFrom reports whether worker/band home b lives on a different NUMA
// node than scanner a (worker or caller pseudo-worker). Flat pools are
// never remote.
func (p *Pool) remoteFrom(a, b int) bool {
	return p.topo != nil && p.topo[a] != p.topo[b]
}

func (p *Pool) noteBandSteal(worker, victim int, remote bool) {
	p.counters(worker).noteSteal(remote)
	p.noteStealEvent(p.tbuf(worker), victim, remote)
}

// runWord decodes and executes one task word. The job table load is ordered
// after the word load that produced w, and the slot was populated before the
// word was published, so the loaded table always covers the slot.
func (p *Pool) runWord(w uint64, worker int) {
	slot, arg := decodeTask(w)
	tab := *p.jobTab.Load()
	tab[slot].runTask(arg, worker)
}

// workerLoop is the body of each worker goroutine: pop own deque, drain own
// inbox, steal, and spin-then-park when the pool is idle.
func (p *Pool) workerLoop(id int) {
	defer p.wg.Done()
	w := p.ws[id]
	c := &p.stats[id]
	tb := p.tbuf(id)
	idleSweeps := 0
	for {
		if word, ok := w.dq.pop(); ok {
			idleSweeps = 0
			p.runWord(word, id)
			continue
		}
		if moved := w.inbox.drainTo(&w.dq); moved {
			continue
		}
		if word, victim, remote, ok := p.stealWork(id); ok {
			idleSweeps = 0
			c.noteSteal(remote)
			p.noteStealEvent(tb, victim, remote)
			// Work-conserving cascade: if more work is visible, pull a
			// sibling out of park to share it.
			if p.idle.Load() > 0 && p.hasWork() {
				p.wakeOne()
			}
			p.runWord(word, id)
			continue
		}
		c.emptySpins.Add(1)
		idleSweeps++
		if idleSweeps < spinRounds {
			runtime.Gosched()
			continue
		}
		idleSweeps = 0
		if p.parkWorker(w, c, tb) {
			return // closed and drained
		}
	}
}

// drainTo moves every queued inbox word into the owner's deque, oldest
// first so FIFO submission order is preserved under LIFO popping of the
// most recent. Returns whether anything moved.
func (in *inbox) drainTo(d *wsDeque) bool {
	if in.n.Load() == 0 {
		return false
	}
	in.mu.Lock()
	moved := in.head < len(in.buf)
	for ; in.head < len(in.buf); in.head++ {
		d.push(in.buf[in.head])
		in.n.Add(-1)
	}
	in.mu.Unlock()
	return moved
}

// stealWork scans the other workers' deques in proximity order — nearest
// tier first, with a randomized start within each tier — then the shared
// injector, then (as a last resort) the other workers' inboxes in the same
// tier order. victim is the worker the word came from (-1 for the shared
// injector) and remote reports whether that victim lives on another NUMA
// node; injector pops are always local (a shared queue has no home). Flat
// pools have a single tier, reproducing the uniform random scan.
func (p *Pool) stealWork(id int) (word uint64, victim int, remote, ok bool) {
	ord := &p.stealOrd[id]
	r := p.rand(id)
	for retried := true; retried; {
		retried = false
		lo, rr := 0, r
		for _, end := range ord.tiers {
			if tn := end - lo; tn > 0 {
				rot := int(rr % uint64(tn))
				for k := 0; k < tn; k++ {
					v := int(ord.victims[lo+(rot+k)%tn])
					w, got, retry := p.ws[v].dq.steal()
					if got {
						return w, v, p.remoteFrom(id, v), true
					}
					retried = retried || retry
				}
			}
			lo, rr = end, rr>>8
		}
		if w, got, retry := p.injector.steal(); got {
			return w, -1, false, true
		} else if retry {
			retried = true
		}
	}
	lo, rr := 0, r
	for _, end := range ord.tiers {
		if tn := end - lo; tn > 0 {
			rot := int(rr % uint64(tn))
			for k := 0; k < tn; k++ {
				v := int(ord.victims[lo+(rot+k)%tn])
				if w, got := p.ws[v].inbox.take(); got {
					return w, v, p.remoteFrom(id, v), true
				}
			}
		}
		lo, rr = end, rr>>8
	}
	return 0, -1, false, false
}

// hasWork reports whether any queue in the pool holds a task. Used for the
// park-time recheck and the wake cascade; racy but conservative callers
// tolerate both outcomes.
func (p *Pool) hasWork() bool {
	if p.injector.size() > 0 {
		return true
	}
	for _, w := range p.ws {
		if w.dq.size() > 0 || w.inbox.n.Load() > 0 {
			return true
		}
	}
	return false
}

// parkWorker blocks the worker until new work is published or the pool
// closes. Returns true when the worker should exit. The announce-then-
// recheck order pairs with publish-then-wake in the submitters: if the
// recheck misses a concurrent push, the pusher's idle-count read is ordered
// after the push and sees this worker's announcement, so a token arrives.
func (p *Pool) parkWorker(w *worker, c *schedCounters, tb *trace.Buf) (exit bool) {
	w.parked.Store(true)
	p.idle.Add(1)
	if p.hasWork() || p.closed.Load() {
		if w.parked.CompareAndSwap(true, false) {
			p.idle.Add(-1)
		} else {
			// A waker claimed us between the recheck and the CAS; it has
			// already delivered a token and fixed the idle count.
			<-w.park
		}
		if p.closed.Load() && !p.hasWork() {
			return true
		}
		return false
	}
	c.parks.Add(1)
	var pstart int64
	if tb != nil {
		pstart = p.tr.Now()
	}
	select {
	case <-w.park:
		if tb != nil {
			tb.Span(trace.KindPark, pstart, p.tr.Now(), 0, 0)
		}
		return false
	case <-p.closeCh:
		if w.parked.CompareAndSwap(true, false) {
			p.idle.Add(-1)
		} else {
			<-w.park
		}
		if tb != nil {
			tb.Span(trace.KindPark, pstart, p.tr.Now(), 0, 0)
		}
		return !p.hasWork()
	}
}

// wakeOne delivers a park token to one parked worker, if any. The wakeup
// instant is recorded on the woken worker's track (the ring serializes the
// cross-goroutine write).
func (p *Pool) wakeOne() {
	if p.idle.Load() == 0 {
		return
	}
	for i, w := range p.ws {
		if w.parked.CompareAndSwap(true, false) {
			p.idle.Add(-1)
			p.stats[len(p.ws)].wakeups.Add(1)
			if tb := p.tbuf(i); tb != nil {
				tb.Instant(trace.KindWakeup, p.tr.Now(), int64(i), 0)
			}
			w.park <- struct{}{}
			return
		}
	}
}

// wake delivers up to n park tokens. Submitters call it after publishing n
// tasks so a batch wakes enough workers to drain it in parallel.
func (p *Pool) wake(n int) {
	for i := 0; i < n && p.idle.Load() > 0; i++ {
		p.wakeOne()
	}
}

// wait blocks until the job completes, scavenging queued tasks from the
// whole pool in the meantime (the caller participates with pseudo-worker id
// len(ws)). It does not rethrow captured panics; callers do, so Do can give
// its inline thunk's panic precedence. After a bounded number of empty
// sweeps the caller parks on the job's completion signal instead of
// busy-spinning: every still-pending task is then either queued (some
// unparked worker saw it or a token is in flight) or already running, so
// progress does not depend on this goroutine.
func (p *Pool) wait(j *job) {
	callerID := len(p.ws)
	c := &p.stats[callerID]
	sweeps := 0
	for !j.isDone() {
		if word, ok := p.scavenge(callerID); ok {
			sweeps = 0
			p.runWord(word, callerID)
			continue
		}
		c.emptySpins.Add(1)
		sweeps++
		if sweeps < spinRounds {
			runtime.Gosched()
			continue
		}
		c.parks.Add(1)
		if tb := p.tbuf(callerID); tb != nil {
			pstart := p.tr.Now()
			j.sleep()
			tb.Span(trace.KindPark, pstart, p.tr.Now(), 0, 0)
			break
		}
		j.sleep()
		break
	}
}

// scavenge is the caller-side steal path: injector first (external
// submissions), then worker deques and inboxes in the same proximity order
// the workers use — the caller pseudo-worker scans with worker 0's tiers.
func (p *Pool) scavenge(callerID int) (uint64, bool) {
	c := p.counters(callerID)
	tb := p.tbuf(callerID)
	for {
		w, ok, retry := p.injector.steal()
		if ok {
			c.noteSteal(false)
			p.noteStealEvent(tb, -1, false)
			return w, true
		}
		if !retry {
			break
		}
	}
	ord := &p.stealOrd[callerID]
	r := p.rand(callerID)
	for retried := true; retried; {
		retried = false
		lo, rr := 0, r
		for _, end := range ord.tiers {
			if tn := end - lo; tn > 0 {
				rot := int(rr % uint64(tn))
				for k := 0; k < tn; k++ {
					v := int(ord.victims[lo+(rot+k)%tn])
					w, got, retry := p.ws[v].dq.steal()
					if got {
						remote := p.remoteFrom(callerID, v)
						c.noteSteal(remote)
						p.noteStealEvent(tb, v, remote)
						return w, true
					}
					retried = retried || retry
				}
			}
			lo, rr = end, rr>>8
		}
	}
	lo, rr := 0, r
	for _, end := range ord.tiers {
		if tn := end - lo; tn > 0 {
			rot := int(rr % uint64(tn))
			for k := 0; k < tn; k++ {
				v := int(ord.victims[lo+(rot+k)%tn])
				if w, got := p.ws[v].inbox.take(); got {
					remote := p.remoteFrom(callerID, v)
					c.noteSteal(remote)
					p.noteStealEvent(tb, v, remote)
					return w, true
				}
			}
		}
		lo, rr = end, rr>>8
	}
	return 0, false
}
