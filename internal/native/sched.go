package native

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pstlbench/internal/counters"
)

// SchedStats is a snapshot of the pool's scheduling counters, mirroring the
// scheduler fields of counters.Set so native runs and the simulator report
// comparable statistics.
type SchedStats struct {
	// Steals counts work acquired from somewhere other than the worker's
	// own queues: deque steals, injector pops, inbox raids, and band
	// half-steals inside stealing loops.
	Steals uint64
	// Parks counts blocking events: workers parking on their semaphore and
	// callers parking on a job's completion after their spin budget.
	Parks uint64
	// Wakeups counts park tokens delivered to sleeping workers.
	Wakeups uint64
	// EmptySpins counts scavenging rounds that found every queue empty.
	EmptySpins uint64
}

// Add accumulates o into s.
func (s *SchedStats) Add(o SchedStats) {
	s.Steals += o.Steals
	s.Parks += o.Parks
	s.Wakeups += o.Wakeups
	s.EmptySpins += o.EmptySpins
}

// Sub returns s - o, for differencing two snapshots around a region of
// interest (the native analogue of the Likwid marker bracketing).
func (s SchedStats) Sub(o SchedStats) SchedStats {
	return SchedStats{
		Steals:     s.Steals - o.Steals,
		Parks:      s.Parks - o.Parks,
		Wakeups:    s.Wakeups - o.Wakeups,
		EmptySpins: s.EmptySpins - o.EmptySpins,
	}
}

// Counters maps the stats onto the scheduler fields of a counters.Set, so
// native runs and simulated runs (simexec) report through the same type.
func (s SchedStats) Counters() counters.Set {
	return counters.Set{
		Steals:     float64(s.Steals),
		Parks:      float64(s.Parks),
		Wakeups:    float64(s.Wakeups),
		EmptySpins: float64(s.EmptySpins),
	}
}

// schedCounters is one cache-line-padded bundle of counters. Workers own
// one each (index = worker id); callers share a trailing bundle.
type schedCounters struct {
	steals     atomic.Uint64
	parks      atomic.Uint64
	wakeups    atomic.Uint64
	emptySpins atomic.Uint64
	_          [4]uint64 // pad to a cache line to avoid false sharing
}

// worker is the per-worker scheduling state.
type worker struct {
	dq     wsDeque
	inbox  inbox
	parked atomic.Bool
	park   chan struct{} // capacity 1; a token is only sent after unparking CAS
	rng    uint64        // xorshift state, owner goroutine only
}

// inbox is a small mutex-guarded MPSC mailbox for task words submitted to a
// specific worker (pinned fork-join parts, initial stealing bands). The
// owner drains it into its deque; thieves may raid it as a last resort so a
// worker blocked in nested waiting cannot strand pinned work. The mutex is
// only on the submission path (per ForChunks call, not per chunk).
type inbox struct {
	mu   sync.Mutex
	n    atomic.Int32
	buf  []uint64
	head int
}

func (in *inbox) put(w uint64) {
	in.mu.Lock()
	if in.head == len(in.buf) {
		in.buf = in.buf[:0]
		in.head = 0
	}
	in.buf = append(in.buf, w)
	in.n.Add(1)
	in.mu.Unlock()
}

func (in *inbox) take() (uint64, bool) {
	if in.n.Load() == 0 {
		return 0, false
	}
	in.mu.Lock()
	if in.head == len(in.buf) {
		in.mu.Unlock()
		return 0, false
	}
	w := in.buf[in.head]
	in.head++
	in.n.Add(-1)
	in.mu.Unlock()
	return w, true
}

// spinRounds is the number of full empty scavenging sweeps a worker or
// waiter performs (yielding between sweeps) before parking. Each sweep
// already polls every queue in the pool, so a small budget suffices; long
// budgets burn the CPU the very workers we are waiting for would use.
const spinRounds = 4

// rand returns a pseudo-random value for victim selection. Worker slots use
// an owner-local xorshift; the caller pseudo-worker (id == len(workers))
// shares an atomic splitmix counter.
func (p *Pool) rand(worker int) uint64 {
	if worker < len(p.ws) {
		x := p.ws[worker].rng
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p.ws[worker].rng = x
		return x
	}
	return p.callerRng.Add(0x9E3779B97F4A7C15)
}

func (p *Pool) counters(worker int) *schedCounters {
	if worker < len(p.ws) {
		return &p.stats[worker]
	}
	return &p.stats[len(p.ws)]
}

func (p *Pool) noteBandSteal(worker int) {
	p.counters(worker).steals.Add(1)
}

// runWord decodes and executes one task word. The job table load is ordered
// after the word load that produced w, and the slot was populated before the
// word was published, so the loaded table always covers the slot.
func (p *Pool) runWord(w uint64, worker int) {
	slot, arg := decodeTask(w)
	tab := *p.jobTab.Load()
	tab[slot].runTask(arg, worker)
}

// workerLoop is the body of each worker goroutine: pop own deque, drain own
// inbox, steal, and spin-then-park when the pool is idle.
func (p *Pool) workerLoop(id int) {
	defer p.wg.Done()
	w := p.ws[id]
	c := &p.stats[id]
	idleSweeps := 0
	for {
		if word, ok := w.dq.pop(); ok {
			idleSweeps = 0
			p.runWord(word, id)
			continue
		}
		if moved := w.inbox.drainTo(&w.dq); moved {
			continue
		}
		if word, ok := p.stealWork(id); ok {
			idleSweeps = 0
			c.steals.Add(1)
			// Work-conserving cascade: if more work is visible, pull a
			// sibling out of park to share it.
			if p.idle.Load() > 0 && p.hasWork() {
				p.wakeOne()
			}
			p.runWord(word, id)
			continue
		}
		c.emptySpins.Add(1)
		idleSweeps++
		if idleSweeps < spinRounds {
			runtime.Gosched()
			continue
		}
		idleSweeps = 0
		if p.parkWorker(w, c) {
			return // closed and drained
		}
	}
}

// drainTo moves every queued inbox word into the owner's deque, oldest
// first so FIFO submission order is preserved under LIFO popping of the
// most recent. Returns whether anything moved.
func (in *inbox) drainTo(d *wsDeque) bool {
	if in.n.Load() == 0 {
		return false
	}
	in.mu.Lock()
	moved := in.head < len(in.buf)
	for ; in.head < len(in.buf); in.head++ {
		d.push(in.buf[in.head])
		in.n.Add(-1)
	}
	in.mu.Unlock()
	return moved
}

// stealWork scans the other workers' deques from a random start, then the
// shared injector, then (as a last resort) the other workers' inboxes.
func (p *Pool) stealWork(id int) (uint64, bool) {
	n := len(p.ws)
	start := int(p.rand(id) % uint64(n))
	for retried := true; retried; {
		retried = false
		for k := 0; k < n; k++ {
			v := (start + k) % n
			if v == id {
				continue
			}
			w, ok, retry := p.ws[v].dq.steal()
			if ok {
				return w, true
			}
			retried = retried || retry
		}
		if w, ok, retry := p.injector.steal(); ok {
			return w, true
		} else if retry {
			retried = true
		}
	}
	for k := 0; k < n; k++ {
		v := (start + k) % n
		if v == id {
			continue
		}
		if w, ok := p.ws[v].inbox.take(); ok {
			return w, true
		}
	}
	return 0, false
}

// hasWork reports whether any queue in the pool holds a task. Used for the
// park-time recheck and the wake cascade; racy but conservative callers
// tolerate both outcomes.
func (p *Pool) hasWork() bool {
	if p.injector.size() > 0 {
		return true
	}
	for _, w := range p.ws {
		if w.dq.size() > 0 || w.inbox.n.Load() > 0 {
			return true
		}
	}
	return false
}

// parkWorker blocks the worker until new work is published or the pool
// closes. Returns true when the worker should exit. The announce-then-
// recheck order pairs with publish-then-wake in the submitters: if the
// recheck misses a concurrent push, the pusher's idle-count read is ordered
// after the push and sees this worker's announcement, so a token arrives.
func (p *Pool) parkWorker(w *worker, c *schedCounters) (exit bool) {
	w.parked.Store(true)
	p.idle.Add(1)
	if p.hasWork() || p.closed.Load() {
		if w.parked.CompareAndSwap(true, false) {
			p.idle.Add(-1)
		} else {
			// A waker claimed us between the recheck and the CAS; it has
			// already delivered a token and fixed the idle count.
			<-w.park
		}
		if p.closed.Load() && !p.hasWork() {
			return true
		}
		return false
	}
	c.parks.Add(1)
	select {
	case <-w.park:
		return false
	case <-p.closeCh:
		if w.parked.CompareAndSwap(true, false) {
			p.idle.Add(-1)
		} else {
			<-w.park
		}
		return !p.hasWork()
	}
}

// wakeOne delivers a park token to one parked worker, if any.
func (p *Pool) wakeOne() {
	if p.idle.Load() == 0 {
		return
	}
	for _, w := range p.ws {
		if w.parked.CompareAndSwap(true, false) {
			p.idle.Add(-1)
			p.stats[len(p.ws)].wakeups.Add(1)
			w.park <- struct{}{}
			return
		}
	}
}

// wake delivers up to n park tokens. Submitters call it after publishing n
// tasks so a batch wakes enough workers to drain it in parallel.
func (p *Pool) wake(n int) {
	for i := 0; i < n && p.idle.Load() > 0; i++ {
		p.wakeOne()
	}
}

// wait blocks until the job completes, scavenging queued tasks from the
// whole pool in the meantime (the caller participates with pseudo-worker id
// len(ws)). It does not rethrow captured panics; callers do, so Do can give
// its inline thunk's panic precedence. After a bounded number of empty
// sweeps the caller parks on the job's completion signal instead of
// busy-spinning: every still-pending task is then either queued (some
// unparked worker saw it or a token is in flight) or already running, so
// progress does not depend on this goroutine.
func (p *Pool) wait(j *job) {
	callerID := len(p.ws)
	c := &p.stats[callerID]
	sweeps := 0
	for !j.isDone() {
		if word, ok := p.scavenge(callerID); ok {
			sweeps = 0
			p.runWord(word, callerID)
			continue
		}
		c.emptySpins.Add(1)
		sweeps++
		if sweeps < spinRounds {
			runtime.Gosched()
			continue
		}
		c.parks.Add(1)
		j.sleep()
		break
	}
}

// scavenge is the caller-side steal path: injector first (external
// submissions), then worker deques and inboxes.
func (p *Pool) scavenge(callerID int) (uint64, bool) {
	for {
		w, ok, retry := p.injector.steal()
		if ok {
			c := p.counters(callerID)
			c.steals.Add(1)
			return w, true
		}
		if !retry {
			break
		}
	}
	n := len(p.ws)
	start := 0
	if n > 0 {
		start = int(p.rand(callerID) % uint64(n))
	}
	for retried := true; retried; {
		retried = false
		for k := 0; k < n; k++ {
			w, ok, retry := p.ws[(start+k)%n].dq.steal()
			if ok {
				p.counters(callerID).steals.Add(1)
				return w, true
			}
			retried = retried || retry
		}
	}
	for k := 0; k < n; k++ {
		if w, ok := p.ws[(start+k)%n].inbox.take(); ok {
			p.counters(callerID).steals.Add(1)
			return w, true
		}
	}
	return 0, false
}
