package native

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pstlbench/internal/exec"
)

// TestCloseIdempotent covers the long-running-service lifecycle: a pool
// owner with several shutdown paths may Close more than once, including
// concurrently.
func TestCloseIdempotent(t *testing.T) {
	p := New(4, StrategyStealing)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
	p.Close() // and once more after everyone is done
}

func mustPanicWith(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one mentioning %q", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v; want one mentioning %q", r, substr)
		}
	}()
	fn()
}

// TestUseAfterClosePanics pins the contract that submitting to a closed
// pool fails loudly instead of parking the caller forever.
func TestUseAfterClosePanics(t *testing.T) {
	p := New(2, StrategyStealing)
	p.Close()
	mustPanicWith(t, "closed Pool", func() {
		p.ForChunks(1024, exec.Auto, func(_, _, _ int) {})
	})
	mustPanicWith(t, "closed Pool", func() {
		p.Do(func() {}, func() {})
	})
	mustPanicWith(t, "closed Pool", func() {
		p.Do(func() {}) // even the inline single-thunk path
	})
}

// TestForChunksCancelPreFired: a token that fired before submission runs
// nothing at all.
func TestForChunksCancelPreFired(t *testing.T) {
	for _, s := range []Strategy{StrategyForkJoin, StrategyStealing, StrategyCentralQueue} {
		p := New(4, s)
		c := &exec.Cancel{}
		c.Cancel()
		var ran atomic.Int64
		p.ForChunksCancel(1<<16, exec.Fine, c, func(_, lo, hi int) { ran.Add(int64(hi - lo)) })
		p.Close()
		if got := ran.Load(); got != 0 {
			t.Errorf("%v: pre-fired token ran %d iterations, want 0", s, got)
		}
	}
}

// TestForChunksCancelMidLoop fires the token from inside the first executed
// chunk and checks that the loop abandons most of its chunks: every chunk
// dispatch checks the token, so at most the chunks already past their check
// (bounded by the worker count) may still run.
func TestForChunksCancelMidLoop(t *testing.T) {
	const n = 1 << 16
	for _, s := range []Strategy{StrategyForkJoin, StrategyStealing, StrategyCentralQueue} {
		p := New(4, s)
		c := &exec.Cancel{}
		var chunks atomic.Int64
		g := exec.Grain{MinChunk: 16, MaxChunk: 16} // 4096 chunks
		p.ForChunksCancel(n, g, c, func(_, lo, hi int) {
			chunks.Add(1)
			c.Cancel()
		})
		p.Close()
		total := int64(g.ChunkCount(n, 4))
		if got := chunks.Load(); got >= total/2 {
			t.Errorf("%v: %d of %d chunks ran after mid-loop cancel", s, got, total)
		}
		if !c.Canceled() {
			t.Errorf("%v: token lost its canceled state", s)
		}
	}
}

// TestForChunksCancelStress races concurrent cancellable loops against
// external cancel calls on one shared pool — the serving layer's steady
// state — and checks the pool stays usable afterwards.
func TestForChunksCancelStress(t *testing.T) {
	p := New(4, StrategyStealing)
	defer p.Close()
	const loops = 64
	var wg sync.WaitGroup
	for i := 0; i < loops; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &exec.Cancel{}
			done := make(chan struct{})
			go func() {
				if i%2 == 0 {
					c.Cancel() // races the submission itself
				}
				close(done)
			}()
			var ran atomic.Int64
			p.ForChunksCancel(1<<12, exec.Fine, c, func(_, lo, hi int) {
				ran.Add(int64(hi - lo))
			})
			<-done
			if !c.Canceled() && ran.Load() != 1<<12 {
				t.Errorf("uncanceled loop ran %d of %d iterations", ran.Load(), 1<<12)
			}
		}()
	}
	wg.Wait()
	// The pool must still run complete, correct loops.
	var ran atomic.Int64
	p.ForChunks(1<<12, exec.Fine, func(_, lo, hi int) { ran.Add(int64(hi - lo)) })
	if ran.Load() != 1<<12 {
		t.Fatalf("pool damaged by cancel stress: ran %d of %d", ran.Load(), 1<<12)
	}
}
