package native

import (
	"sync"
	"testing"

	"pstlbench/internal/exec"
	"pstlbench/internal/trace"
)

// coverFromTrace asserts the chunk spans of a traced run exactly tile the
// iteration space [0, n): every element covered once, no overlaps.
func coverFromTrace(t *testing.T, tr *trace.Tracer, n int) {
	t.Helper()
	seen := make([]int, n)
	for ti := 0; ti < tr.Tracks(); ti++ {
		for _, e := range tr.Events(ti) {
			if e.Kind != trace.KindChunk || e.A0 < 0 {
				continue
			}
			for i := e.A0; i < e.A1; i++ {
				seen[i]++
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("element %d covered %d times in trace", i, c)
		}
	}
}

func TestTracedPoolRecordsChunkSpans(t *testing.T) {
	const workers, n = 4, 10_000
	for _, s := range []Strategy{StrategyForkJoin, StrategyStealing, StrategyCentralQueue} {
		t.Run(s.String(), func(t *testing.T) {
			tr := trace.New(workers+1, trace.DefaultCapacity)
			p := NewTraced(workers, s, Topology{}, tr)
			defer p.Close()
			var mu sync.Mutex
			got := 0
			p.ForChunks(n, exec.Fine, func(_, lo, hi int) {
				mu.Lock()
				got += hi - lo
				mu.Unlock()
			})
			if got != n {
				t.Fatalf("loop covered %d elements, want %d", got, n)
			}
			coverFromTrace(t, tr, n)
			s := trace.Summarize(tr)
			if s.Lost != 0 {
				t.Fatalf("trace lost %d events on a tiny run", s.Lost)
			}
			if s.Chunk.Count == 0 {
				t.Fatal("no chunk spans recorded")
			}
		})
	}
}

func TestTracedStealEventsMatchStats(t *testing.T) {
	const workers, n = 4, 1 << 16
	tr := trace.New(workers+1, trace.DefaultCapacity)
	p := NewTraced(workers, StrategyStealing, SplitTopology(workers, 2), tr)
	defer p.Close()
	for iter := 0; iter < 8; iter++ {
		p.ForChunks(n, exec.Fine, func(_, lo, hi int) {
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			_ = s
		})
	}
	st := p.Stats()
	var local, remote int
	for ti := 0; ti < tr.Tracks(); ti++ {
		for _, e := range tr.Events(ti) {
			if e.Kind != trace.KindSteal {
				continue
			}
			if v := e.A0; v < -1 || int(v) >= workers {
				t.Fatalf("steal event has victim %d outside [-1, %d)", v, workers)
			}
			if e.A1 == trace.TierRemote {
				remote++
			} else {
				local++
			}
		}
	}
	if uint64(local) != st.LocalSteals || uint64(remote) != st.RemoteSteals {
		t.Fatalf("trace steals local=%d remote=%d, counters local=%d remote=%d",
			local, remote, st.LocalSteals, st.RemoteSteals)
	}
}

func TestTracedDoRecordsThunkSpans(t *testing.T) {
	const workers = 2
	tr := trace.New(workers+1, trace.DefaultCapacity)
	p := NewTraced(workers, StrategyStealing, Topology{}, tr)
	defer p.Close()
	var a, b, c bool
	p.Do(func() { a = true }, func() { b = true }, func() { c = true })
	if !a || !b || !c {
		t.Fatal("Do did not run every thunk")
	}
	// Do runs fns[0] inline (untraced) and schedules the rest as thunk
	// tasks, which appear as KindChunk spans with A0 == -1.
	thunks := 0
	for ti := 0; ti < tr.Tracks(); ti++ {
		for _, e := range tr.Events(ti) {
			if e.Kind == trace.KindChunk && e.A0 == -1 {
				thunks++
			}
		}
	}
	if thunks != 2 {
		t.Fatalf("recorded %d thunk spans, want 2", thunks)
	}
}

func TestNewTracedRejectsShortTracer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTraced accepted a tracer with too few tracks")
		}
	}()
	NewTraced(4, StrategyStealing, Topology{}, trace.New(2, 64))
}

func TestTracedPoolNilTracerMatchesUntraced(t *testing.T) {
	p := NewTraced(2, StrategyStealing, Topology{}, nil)
	defer p.Close()
	sum := 0
	var mu sync.Mutex
	p.ForChunks(1000, exec.Auto, func(_, lo, hi int) {
		mu.Lock()
		sum += hi - lo
		mu.Unlock()
	})
	if sum != 1000 {
		t.Fatalf("covered %d, want 1000", sum)
	}
}
