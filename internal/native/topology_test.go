package native

import (
	"sync/atomic"
	"testing"
	"time"

	"pstlbench/internal/exec"
	"pstlbench/internal/machine"
)

func TestSplitTopology(t *testing.T) {
	topo := SplitTopology(8, 2)
	want := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for w, n := range want {
		if topo.Nodes[w] != n {
			t.Fatalf("SplitTopology(8,2).Nodes = %v, want %v", topo.Nodes, want)
		}
	}
	// Ragged split still covers every node.
	topo = SplitTopology(10, 4)
	seen := map[int]bool{}
	for _, n := range topo.Nodes {
		seen[n] = true
	}
	if len(seen) != 4 {
		t.Fatalf("SplitTopology(10,4) populates %d nodes, want 4: %v", len(seen), topo.Nodes)
	}
}

func TestTopologyFromMachine(t *testing.T) {
	m := machine.MachB() // 64 cores, 8 nodes, 2 sockets
	topo := TopologyFromMachine(m, 16)
	for w := 0; w < 16; w++ {
		if topo.Nodes[w] != m.NodeOf(w) || topo.Sockets[w] != m.SocketOf(w) {
			t.Fatalf("worker %d: node %d socket %d, want compact pinning %d/%d",
				w, topo.Nodes[w], topo.Sockets[w], m.NodeOf(w), m.SocketOf(w))
		}
	}
	// Oversubscription wraps around the core list.
	topo = TopologyFromMachine(m, m.Cores+3)
	if topo.Nodes[m.Cores] != m.NodeOf(0) {
		t.Fatalf("wrapped worker node = %d, want %d", topo.Nodes[m.Cores], m.NodeOf(0))
	}
}

// TestStealOrderTiers pins the tier structure: same-node victims strictly
// before the rest, and the caller pseudo-worker co-located with worker 0.
func TestStealOrderTiers(t *testing.T) {
	ords := buildStealOrders(8, SplitTopology(8, 2))
	if len(ords) != 9 {
		t.Fatalf("got %d orders, want 9 (8 workers + caller)", len(ords))
	}
	inTier := func(ord stealOrder, tier int) []int32 {
		lo := 0
		if tier > 0 {
			lo = ord.tiers[tier-1]
		}
		return ord.victims[lo:ord.tiers[tier]]
	}
	// Worker 0 (node 0): near = {1,2,3}, then the node-1 workers.
	near := inTier(ords[0], 0)
	if len(near) != 3 {
		t.Fatalf("worker 0 near tier = %v, want {1,2,3}", near)
	}
	for _, v := range near {
		if v < 1 || v > 3 {
			t.Fatalf("worker 0 near tier contains off-node victim %d", v)
		}
	}
	for _, v := range inTier(ords[0], 1) {
		if v < 4 {
			t.Fatalf("worker 0 mid tier contains same-node victim %d", v)
		}
	}
	// Worker 5 (node 1): near = {4,6,7}.
	for _, v := range inTier(ords[5], 0) {
		if v < 4 || v == 5 {
			t.Fatalf("worker 5 near tier contains victim %d", v)
		}
	}
	// Caller rides with worker 0 and may rob everyone, node 0 first.
	caller := ords[8]
	if len(caller.victims) != 8 {
		t.Fatalf("caller scans %d victims, want 8", len(caller.victims))
	}
	for _, v := range inTier(caller, 0) {
		if v > 3 {
			t.Fatalf("caller near tier contains off-node victim %d", v)
		}
	}
	// A flat topology collapses to one tier over everyone else.
	flat := buildStealOrders(4, Topology{})
	if len(flat[1].tiers) != 1 || flat[1].tiers[0] != 3 {
		t.Fatalf("flat order = %+v, want single tier of 3", flat[1])
	}
}

func TestTopologyValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("short nodes", func() {
		NewWithTopology(4, StrategyStealing, Topology{Nodes: []int{0, 1}}).Close()
	})
	mustPanic("short sockets", func() {
		NewWithTopology(2, StrategyStealing,
			Topology{Nodes: []int{0, 1}, Sockets: []int{0}}).Close()
	})
	mustPanic("sockets without nodes", func() {
		NewWithTopology(2, StrategyStealing, Topology{Sockets: []int{0, 0}}).Close()
	})
}

// TestCallerRandFinalized pins the scheduler RNG satellite fix: the caller
// pseudo-worker's stream must be finalizer-mixed, not the raw additive
// splitmix counter. The raw counter's consecutive values differ by a fixed
// constant, so victim starts (rand % n) cycle in a fixed pattern; the
// mixed stream has varied deltas and near-uniform residues.
func TestCallerRandFinalized(t *testing.T) {
	p := New(2, StrategyStealing)
	defer p.Close()
	caller := len(p.ws)

	const samples = 4096
	vals := make([]uint64, samples)
	for i := range vals {
		vals[i] = p.rand(caller)
	}
	diffs := map[uint64]bool{}
	for i := 1; i < samples; i++ {
		diffs[vals[i]-vals[i-1]] = true
	}
	if len(diffs) < samples/2 {
		t.Fatalf("caller rand has only %d distinct deltas over %d samples: arithmetic progression", len(diffs), samples)
	}
	// Residues mod a small victim count stay roughly uniform (the quantity
	// victim selection consumes).
	for _, n := range []uint64{3, 7, 16} {
		buckets := make([]int, n)
		for _, v := range vals {
			buckets[v%n]++
		}
		expect := samples / int(n)
		for r, got := range buckets {
			if got < expect/2 || got > expect*2 {
				t.Fatalf("rand %% %d residue %d hit %d times, expect ~%d", n, r, got, expect)
			}
		}
	}
}

// TestNUMAStealCounts exercises a topology pool end to end: a skewed
// stealing loop must record steals, the local/remote split must sum to the
// total, and the loop must still visit every element exactly once.
func TestNUMAStealCounts(t *testing.T) {
	p := NewWithTopology(4, StrategyStealing, SplitTopology(4, 2))
	defer p.Close()

	// remoteFrom follows the node map: workers {0,1} vs {2,3}, caller
	// rides with worker 0.
	if p.remoteFrom(0, 1) || !p.remoteFrom(0, 2) || !p.remoteFrom(4, 3) || p.remoteFrom(4, 1) {
		t.Fatal("remoteFrom does not follow the topology")
	}

	const n = 1 << 12
	var visited [n]atomic.Int32
	before := p.Stats()
	for iter := 0; iter < 20; iter++ {
		p.ForChunks(n, exec.Fine, func(worker, lo, hi int) {
			// Skew: the first band is slow, forcing the other workers to
			// steal its chunks.
			if lo < n/4 {
				time.Sleep(50 * time.Microsecond)
			}
			for i := lo; i < hi; i++ {
				visited[i].Add(1)
			}
		})
	}
	for i := range visited {
		if got := visited[i].Load(); got != 20 {
			t.Fatalf("element %d visited %d times, want 20", i, got)
		}
	}
	d := p.Stats().Sub(before)
	if d.Steals() == 0 {
		t.Fatalf("skewed stealing loop recorded no steals: %+v", d)
	}
	if d.Steals() != d.LocalSteals+d.RemoteSteals {
		t.Fatalf("steal split does not sum: %+v", d)
	}
}
