package native

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pstlbench/internal/exec"
)

var allStrategies = []Strategy{StrategyForkJoin, StrategyStealing, StrategyCentralQueue}

func withPools(t *testing.T, workers int, fn func(t *testing.T, p *Pool)) {
	t.Helper()
	for _, s := range allStrategies {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			p := New(workers, s)
			defer p.Close()
			fn(t, p)
		})
	}
}

func TestForChunksCoversIterationSpace(t *testing.T) {
	withPools(t, 4, func(t *testing.T, p *Pool) {
		for _, n := range []int{0, 1, 3, 64, 1000, 100000} {
			for _, g := range []exec.Grain{exec.Static, exec.Auto, exec.Fine} {
				hits := make([]int32, n)
				p.ForChunks(n, g, func(worker, lo, hi int) {
					if worker < 0 || worker > p.Workers() {
						t.Errorf("worker index %d out of range", worker)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("n=%d grain=%+v: index %d visited %d times", n, g, i, h)
					}
				}
			}
		}
	})
}

func TestForChunksParallelSum(t *testing.T) {
	withPools(t, 8, func(t *testing.T, p *Pool) {
		const n = 1 << 18
		var sum atomic.Int64
		p.ForChunks(n, exec.Auto, func(worker, lo, hi int) {
			local := int64(0)
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		want := int64(n) * (n - 1) / 2
		if got := sum.Load(); got != want {
			t.Fatalf("sum = %d, want %d", got, want)
		}
	})
}

func TestDoRunsAllThunks(t *testing.T) {
	withPools(t, 4, func(t *testing.T, p *Pool) {
		var ran [10]atomic.Int32
		fns := make([]func(), len(ran))
		for i := range fns {
			i := i
			fns[i] = func() { ran[i].Add(1) }
		}
		p.Do(fns...)
		for i := range ran {
			if ran[i].Load() != 1 {
				t.Fatalf("thunk %d ran %d times", i, ran[i].Load())
			}
		}
		// Degenerate arities.
		p.Do()
		called := false
		p.Do(func() { called = true })
		if !called {
			t.Fatal("single-thunk Do did not run")
		}
	})
}

func TestNestedParallelismNoDeadlock(t *testing.T) {
	// Recursive divide-and-conquer through Do on a pool smaller than the
	// task tree must not deadlock (callers help while waiting).
	withPools(t, 2, func(t *testing.T, p *Pool) {
		var count atomic.Int64
		var rec func(depth int)
		rec = func(depth int) {
			if depth == 0 {
				count.Add(1)
				return
			}
			p.Do(func() { rec(depth - 1) }, func() { rec(depth - 1) })
		}
		rec(8)
		if got := count.Load(); got != 256 {
			t.Fatalf("leaf count = %d, want 256", got)
		}
	})
}

func TestNestedForChunks(t *testing.T) {
	withPools(t, 3, func(t *testing.T, p *Pool) {
		const rows, cols = 40, 100
		hits := make([]int32, rows*cols)
		p.ForChunks(rows, exec.Auto, func(_, rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				r := r
				p.ForChunks(cols, exec.Static, func(_, clo, chi int) {
					for c := clo; c < chi; c++ {
						atomic.AddInt32(&hits[r*cols+c], 1)
					}
				})
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("cell %d visited %d times", i, h)
			}
		}
	})
}

func TestPanicPropagation(t *testing.T) {
	withPools(t, 4, func(t *testing.T, p *Pool) {
		mustPanic := func(name string, fn func()) {
			t.Helper()
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("%s: panic did not propagate", name)
				} else if r != "boom" {
					t.Fatalf("%s: got panic %v, want boom", name, r)
				}
			}()
			fn()
		}
		mustPanic("ForChunks", func() {
			p.ForChunks(1000, exec.Fine, func(_, lo, hi int) {
				if lo <= 500 && 500 < hi {
					panic("boom")
				}
			})
		})
		mustPanic("Do", func() {
			p.Do(func() {}, func() { panic("boom") }, func() {})
		})
		// The pool must remain usable after a panic.
		var n atomic.Int32
		p.ForChunks(100, exec.Static, func(_, lo, hi int) { n.Add(int32(hi - lo)) })
		if n.Load() != 100 {
			t.Fatalf("pool broken after panic: %d", n.Load())
		}
	})
}

func TestPanicInFirstInlineThunk(t *testing.T) {
	withPools(t, 2, func(t *testing.T, p *Pool) {
		var other atomic.Bool
		defer func() {
			if recover() == nil {
				t.Fatal("panic in inline thunk did not propagate")
			}
			if !other.Load() {
				t.Error("sibling thunk did not complete before rethrow")
			}
		}()
		p.Do(func() { panic("boom") }, func() { other.Store(true) })
	})
}

func TestWorkerCountClamped(t *testing.T) {
	p := New(0, StrategyForkJoin)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", p.Workers())
	}
	ran := false
	p.ForChunks(10, exec.Static, func(_, lo, hi int) { ran = true })
	if !ran {
		t.Fatal("loop body never ran")
	}
}

func TestStealingBalancesSkewedWork(t *testing.T) {
	// With a fine grain and wildly skewed chunk costs, stealing must still
	// execute everything exactly once.
	p := New(4, StrategyStealing)
	defer p.Close()
	const n = 4096
	hits := make([]int32, n)
	p.ForChunks(n, exec.Grain{ChunksPerWorker: 16}, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i%64 == 0 {
				// Simulate a heavy element.
				s := 0
				for k := 0; k < 10000; k++ {
					s += k
				}
				_ = s
			}
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestBandStealHalf(t *testing.T) {
	var b chunkBand
	b.state.Store(packBand(0, 10))
	lo, hi, ok := b.stealHalf()
	_, bhi := unpackBand(b.state.Load())
	if !ok || hi-lo != 5 || bhi != 5 {
		t.Fatalf("stealHalf: lo=%d hi=%d ok=%v band.hi=%d", lo, hi, ok, bhi)
	}
	// A band with one chunk is not stealable.
	var b2 chunkBand
	b2.state.Store(packBand(3, 4))
	if _, _, ok := b2.stealHalf(); ok {
		t.Fatal("stole from single-chunk band")
	}
	if i, ok := b2.take(); !ok || i != 3 {
		t.Fatalf("take: %d %v", i, ok)
	}
	if _, ok := b2.take(); ok {
		t.Fatal("take from empty band succeeded")
	}
}

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{
		StrategyForkJoin:     "forkjoin",
		StrategyStealing:     "stealing",
		StrategyCentralQueue: "centralqueue",
		Strategy(99):         "Strategy(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestCloseDrainsAndStops(t *testing.T) {
	p := New(3, StrategyCentralQueue)
	var n atomic.Int32
	p.ForChunks(1000, exec.Fine, func(_, lo, hi int) { n.Add(int32(hi - lo)) })
	p.Close()
	if n.Load() != 1000 {
		t.Fatalf("work lost across Close: %d", n.Load())
	}
}

func TestConcurrentIndependentLoops(t *testing.T) {
	// Multiple goroutines may drive independent loops through one pool
	// concurrently; each loop must still cover its space exactly once.
	withPools(t, 4, func(t *testing.T, p *Pool) {
		const loops = 8
		const n = 20000
		var wg sync.WaitGroup
		errs := make(chan string, loops)
		for l := 0; l < loops; l++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				hits := make([]int32, n)
				p.ForChunks(n, exec.Auto, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						errs <- fmt.Sprintf("index %d visited %d times", i, h)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	})
}

func TestConcurrentDoGroups(t *testing.T) {
	withPools(t, 3, func(t *testing.T, p *Pool) {
		var total atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.Do(
					func() { total.Add(1) },
					func() { total.Add(10) },
					func() { total.Add(100) },
				)
			}()
		}
		wg.Wait()
		if got := total.Load(); got != 16*111 {
			t.Fatalf("total = %d, want %d", got, 16*111)
		}
	})
}
