package native

import (
	"sync"
	"sync/atomic"

	"pstlbench/internal/exec"
	"pstlbench/internal/trace"
)

// A task word is the unit queued on the deques: the high half names a job
// slot in the pool's job table (+1, so the zero word is never a valid task),
// the low half is a small argument interpreted by the job kind (part index,
// chunk index, or thunk index). Keeping tasks single words is what lets the
// deques hold them atomically, and replacing the seed's one-closure-per-chunk
// scheme with (job, index) pairs is what removes the per-chunk allocations.
func encodeTask(slot int32, arg int32) uint64 {
	return uint64(slot+1)<<32 | uint64(uint32(arg))
}

func decodeTask(w uint64) (slot int32, arg int32) {
	return int32(w>>32) - 1, int32(uint32(w))
}

// jobKind selects how a job interprets a task argument.
type jobKind int8

const (
	// kindStatic: arg is a part index; the part runs chunks arg, arg+parts,
	// arg+2*parts, ... (OpenMP schedule(static) interleaving).
	kindStatic jobKind = iota
	// kindBand: arg is a part index owning a band of contiguous chunk
	// indices; exhausted parts steal half of a sibling band.
	kindBand
	// kindChunk: arg is a single chunk index (HPX-style per-chunk task).
	kindChunk
	// kindThunk: arg indexes into fns (Do task groups).
	kindThunk
)

// job is a schedulable operation: one ForChunks loop or one Do group. Jobs
// live permanently in their pool's job table and are recycled through a
// slot freelist, so steady-state dispatch does not allocate: the band array
// and thunk slice reuse their backing storage, and completion is signalled
// through a reusable condition variable rather than a fresh channel.
type job struct {
	pool *Pool
	slot int32
	kind jobKind

	// Completion accounting (the seed's group, folded in).
	pending  atomic.Int64
	doneFlag atomic.Bool
	panicked atomic.Bool
	panicVal any
	wmu      sync.Mutex
	wcond    sync.Cond // signalled once doneFlag is set

	// Chunk loops.
	body   func(worker, lo, hi int)
	cancel *exec.Cancel // nil = uncancellable; checked before every chunk
	n      int          // iteration space size
	chunks int  // total chunk count
	parts  int  // scheduled parts (kindStatic / kindBand)
	base   int  // linear partition: chunk size floor
	rem    int  // linear partition: first rem chunks get one extra
	guided bool // guided partition: ranges come from grain.ChunkAt
	grain  exec.Grain
	gw     int // worker count the partition was computed for
	bands  []chunkBand

	// Thunk groups.
	fns []func()
}

// chunkBand is a [lo, hi) window of chunk indices packed into one CAS-able
// word: the owner takes from the front, thieves split off the back half.
// Chunk indices leave a band either by being claimed (front) or by moving to
// the thief's band (back), and a claimed index never re-enters any band, so
// the packed CAS is ABA-safe.
type chunkBand struct {
	state atomic.Uint64 // lo<<32 | hi
}

func packBand(lo, hi int32) uint64       { return uint64(uint32(lo))<<32 | uint64(uint32(hi)) }
func unpackBand(s uint64) (lo, hi int32) { return int32(s >> 32), int32(uint32(s)) }

// take claims the front chunk index of the band.
func (b *chunkBand) take() (int32, bool) {
	for {
		s := b.state.Load()
		lo, hi := unpackBand(s)
		if lo >= hi {
			return 0, false
		}
		if b.state.CompareAndSwap(s, packBand(lo+1, hi)) {
			return lo, true
		}
	}
}

// stealHalf removes the back half of the band (rounded down), returning the
// stolen index range. Bands holding a single chunk are left to their owner:
// stealing one chunk buys no balance and doubles the synchronization.
func (b *chunkBand) stealHalf() (lo, hi int32, ok bool) {
	for {
		s := b.state.Load()
		blo, bhi := unpackBand(s)
		n := bhi - blo
		if n < 2 {
			return 0, 0, false
		}
		take := n / 2
		if b.state.CompareAndSwap(s, packBand(blo, bhi-take)) {
			return bhi - take, bhi, true
		}
	}
}

// chunkRange returns chunk i of the job's partition. O(1) for the linear
// grains via the precomputed base/rem split; guided grains delegate to the
// grain's replay (guided chunk counts are small).
func (j *job) chunkRange(i int) exec.Range {
	if j.guided {
		return j.grain.ChunkAt(i, j.n, j.gw)
	}
	if i < j.rem {
		lo := i * (j.base + 1)
		return exec.Range{Lo: lo, Hi: lo + j.base + 1}
	}
	lo := j.rem*(j.base+1) + (i-j.rem)*j.base
	return exec.Range{Lo: lo, Hi: lo + j.base}
}

// reset prepares a recycled job for a new use with n pending tasks.
func (j *job) reset(kind jobKind, pending int) {
	j.kind = kind
	j.pending.Store(int64(pending))
	j.doneFlag.Store(false)
	j.panicked.Store(false)
	j.panicVal = nil
}

// finish reports one task completion, capturing the first panic, and wakes
// waiters when the job is complete.
func (j *job) finish(recovered any) {
	if recovered != nil && j.panicked.CompareAndSwap(false, true) {
		j.panicVal = recovered
	}
	if j.pending.Add(-1) == 0 {
		j.doneFlag.Store(true)
		j.wmu.Lock()
		j.wcond.Broadcast()
		j.wmu.Unlock()
	}
}

// isDone reports completion of every task of the job.
func (j *job) isDone() bool { return j.doneFlag.Load() }

// sleep blocks until the job completes. The pool's workers guarantee
// progress on any queued task, so parking here cannot strand work.
func (j *job) sleep() {
	j.wmu.Lock()
	for !j.doneFlag.Load() {
		j.wcond.Wait()
	}
	j.wmu.Unlock()
}

// rethrow re-raises the first captured panic. Only valid after isDone.
func (j *job) rethrow() {
	if j.panicked.Load() {
		panic(j.panicVal)
	}
}

// runChunk executes one [lo, hi) chunk of the job's body, wrapping it in a
// KindChunk span when the pool is traced.
func (j *job) runChunk(worker, lo, hi int) {
	p := j.pool
	if tb := p.tbuf(worker); tb != nil {
		start := p.tr.Now()
		j.body(worker, lo, hi)
		tb.Span(trace.KindChunk, start, p.tr.Now(), int64(lo), int64(hi))
		return
	}
	j.body(worker, lo, hi)
}

// runTask executes one task argument of the job on the given worker id,
// reporting completion (and any panic) to the job.
func (j *job) runTask(arg int32, worker int) {
	defer func() { j.finish(recover()) }()
	switch j.kind {
	case kindStatic:
		for i := int(arg); i < j.chunks; i += j.parts {
			if j.cancel.Canceled() {
				return
			}
			r := j.chunkRange(i)
			j.runChunk(worker, r.Lo, r.Hi)
		}
	case kindBand:
		j.runBand(int(arg), worker)
	case kindChunk:
		if j.cancel.Canceled() {
			return
		}
		r := j.chunkRange(int(arg))
		j.runChunk(worker, r.Lo, r.Hi)
	case kindThunk:
		p := j.pool
		if tb := p.tbuf(worker); tb != nil {
			start := p.tr.Now()
			j.fns[arg]()
			tb.Span(trace.KindChunk, start, p.tr.Now(), -1, int64(arg))
			return
		}
		j.fns[arg]()
	}
}

// runBand drains the part's own band, then steals half of a sibling band
// until no band has stealable work left. Victims are scanned in proximity
// order: band indices are the home-worker ids their chunks were pinned to,
// so the executing worker first retries the band bearing its own id (its
// data lives closest), then follows its tiered victim order — same node,
// randomized within the tier, then same socket, then remote. Flat pools
// have one tier, reproducing the uniform random scan.
func (j *job) runBand(part, worker int) {
	own := &j.bands[part]
	p := j.pool
	nb := len(j.bands)
	ord := &p.stealOrd[worker]
	for {
		if j.cancel.Canceled() {
			// The part's remaining band is abandoned, not drained: sibling
			// parts observe the same token, so nobody re-adopts the chunks
			// and the job completes as soon as in-flight chunks return.
			return
		}
		if i, ok := own.take(); ok {
			r := j.chunkRange(int(i))
			j.runChunk(worker, r.Lo, r.Hi)
			continue
		}
		stolen := false
		// A worker executing a migrated part may find fresh work in the
		// band pinned to its own id; that victim never appears in its
		// victim list, so probe it explicitly first.
		if worker < nb && worker != part {
			if lo, hi, ok := j.bands[worker].stealHalf(); ok {
				own.state.Store(packBand(lo, hi))
				p.noteBandSteal(worker, worker, false)
				stolen = true
			}
		}
		r := p.rand(worker)
		lo, rr := 0, r
		for t := 0; t < len(ord.tiers) && !stolen; t++ {
			end := ord.tiers[t]
			if tn := end - lo; tn > 0 {
				rot := int(rr % uint64(tn))
				for k := 0; k < tn; k++ {
					b := int(ord.victims[lo+(rot+k)%tn])
					if b >= nb || b == part {
						continue
					}
					if blo, bhi, ok := j.bands[b].stealHalf(); ok {
						own.state.Store(packBand(blo, bhi))
						p.noteBandSteal(worker, b, p.remoteFrom(worker, b))
						stolen = true
						break
					}
				}
			}
			lo, rr = end, rr>>8
		}
		if !stolen {
			return
		}
	}
}
