package native

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDequeOwnerLIFO(t *testing.T) {
	var d wsDeque
	d.init()
	for i := uint64(1); i <= 5; i++ {
		d.push(i)
	}
	for want := uint64(5); want >= 1; want-- {
		w, ok := d.pop()
		if !ok || w != want {
			t.Fatalf("pop = %d,%v want %d", w, ok, want)
		}
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	var d wsDeque
	d.init()
	for i := uint64(1); i <= 5; i++ {
		d.push(i)
	}
	for want := uint64(1); want <= 5; want++ {
		w, ok, _ := d.steal()
		if !ok || w != want {
			t.Fatalf("steal = %d,%v want %d", w, ok, want)
		}
	}
	if _, ok, retry := d.steal(); ok || retry {
		t.Fatal("steal from empty deque succeeded")
	}
}

func TestDequeGrowPreservesWindow(t *testing.T) {
	var d wsDeque
	d.init()
	// Interleave pushes and steals so the live window wraps the buffer,
	// then force several growths.
	next := uint64(1)
	for i := 0; i < dqInitialSize/2; i++ {
		d.push(next)
		next++
	}
	for i := 0; i < dqInitialSize/4; i++ {
		if _, ok, _ := d.steal(); !ok {
			t.Fatal("warmup steal failed")
		}
	}
	for i := 0; i < 4*dqInitialSize; i++ {
		d.push(next)
		next++
	}
	want := uint64(dqInitialSize/4 + 1)
	for {
		w, ok, _ := d.steal()
		if !ok {
			break
		}
		if w != want {
			t.Fatalf("steal after grow = %d, want %d", w, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained to %d, want %d", want, next)
	}
}

// TestDequeConcurrentStealers hammers one owner (push/pop) against several
// thieves and checks every word is consumed exactly once. Run under -race
// this also exercises the atomicity of the slot accesses.
func TestDequeConcurrentStealers(t *testing.T) {
	const (
		words   = 100000
		thieves = 4
	)
	var d wsDeque
	d.init()
	seen := make([]atomic.Int32, words+1)
	var consumed atomic.Int64
	var wg sync.WaitGroup
	done := make(chan struct{})
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if w, ok, _ := d.steal(); ok {
					seen[w].Add(1)
					consumed.Add(1)
					continue
				}
				select {
				case <-done:
					// Final drain after the producer stops.
					for {
						w, ok, _ := d.steal()
						if !ok {
							return
						}
						seen[w].Add(1)
						consumed.Add(1)
					}
				default:
				}
			}
		}()
	}
	for i := uint64(1); i <= words; i++ {
		d.push(i)
		if i%3 == 0 {
			if w, ok := d.pop(); ok {
				seen[w].Add(1)
				consumed.Add(1)
			}
		}
	}
	for {
		w, ok := d.pop()
		if !ok {
			break
		}
		seen[w].Add(1)
		consumed.Add(1)
	}
	close(done)
	wg.Wait()
	if got := consumed.Load(); got != words {
		t.Fatalf("consumed %d words, want %d", got, words)
	}
	for i := 1; i <= words; i++ {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("word %d consumed %d times", i, c)
		}
	}
}
