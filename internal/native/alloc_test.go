package native

import (
	"fmt"
	"testing"

	"pstlbench/internal/exec"
)

// TestForChunksSteadyStateAllocs asserts the zero-allocation dispatch
// property of the deque scheduler: once the pool's job descriptors, deque
// buffers and inboxes are warm, ForChunks must not allocate per call — and
// in particular not per chunk, which is where the seed's
// one-closure-per-chunk scheme spent its time. A tiny fixed budget is
// allowed for incidental runtime activity; the seed pool sat at 20+ allocs
// per call (260+ for centralqueue).
func TestForChunksSteadyStateAllocs(t *testing.T) {
	const allocBudget = 2.0
	for _, s := range allStrategies {
		for _, workers := range []int{4, 8} {
			t.Run(fmt.Sprintf("%s/w%d", s, workers), func(t *testing.T) {
				p := New(workers, s)
				defer p.Close()
				body := func(worker, lo, hi int) {}
				// Warm up: size the job table, deques and band arrays.
				for i := 0; i < 100; i++ {
					p.ForChunks(1<<15, exec.Fine, body)
				}
				allocs := testing.AllocsPerRun(200, func() {
					p.ForChunks(1<<15, exec.Fine, body)
				})
				if allocs > allocBudget {
					t.Fatalf("steady-state ForChunks allocates %.1f/call, budget %.1f",
						allocs, allocBudget)
				}
			})
		}
	}
}

// TestGrainDispatchNoRangeSlice pins the satellite fix on the partitioning
// side: scheduling via chunk indices must not rebuild []Range per call even
// for the guided grain.
func TestGrainDispatchNoRangeSlice(t *testing.T) {
	p := New(4, StrategyForkJoin)
	defer p.Close()
	body := func(worker, lo, hi int) {}
	for i := 0; i < 50; i++ {
		p.ForChunks(1<<15, exec.Guided, body)
	}
	allocs := testing.AllocsPerRun(100, func() {
		p.ForChunks(1<<15, exec.Guided, body)
	})
	if allocs > 2.0 {
		t.Fatalf("guided ForChunks allocates %.1f/call", allocs)
	}
}
