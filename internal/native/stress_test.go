package native

import (
	"sync/atomic"
	"testing"

	"pstlbench/internal/exec"
)

// TestNestedDoInsideForChunksStress drives recursive Do task groups from
// inside ForChunks bodies on every strategy: the deque scheduler must keep
// nested parallelism deadlock-free (callers scavenge while waiting) and
// cover the iteration space exactly once. Run with -race this doubles as
// the data-race stress for the deques, inboxes and band CASes.
func TestNestedDoInsideForChunksStress(t *testing.T) {
	withPools(t, 4, func(t *testing.T, p *Pool) {
		const n = 512
		const depth = 4
		var leaves atomic.Int64
		var rec func(d int)
		rec = func(d int) {
			if d == 0 {
				leaves.Add(1)
				return
			}
			p.Do(func() { rec(d - 1) }, func() { rec(d - 1) })
		}
		hits := make([]int32, n)
		p.ForChunks(n, exec.Fine, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
			rec(depth)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("index %d visited %d times", i, h)
			}
		}
		chunks := exec.Fine.ChunkCount(n, p.Workers())
		if want := int64(chunks) << depth; leaves.Load() != want {
			t.Fatalf("leaves = %d, want %d", leaves.Load(), want)
		}
	})
}

// TestNestedForChunksPanicFirstWins checks first-panic-wins semantics
// through nesting: a panic raised inside a nested loop must propagate out
// through both levels, and the pool must stay usable afterwards.
func TestNestedForChunksPanicFirstWins(t *testing.T) {
	withPools(t, 4, func(t *testing.T, p *Pool) {
		for round := 0; round < 3; round++ {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatal("panic did not propagate through nesting")
					}
					if r != "inner" {
						t.Fatalf("got panic %v, want inner", r)
					}
				}()
				p.ForChunks(64, exec.Auto, func(_, lo, hi int) {
					p.Do(
						func() {},
						func() { panic("inner") },
					)
				})
			}()
			// The pool must remain fully usable after unwinding.
			var sum atomic.Int64
			p.ForChunks(1000, exec.Fine, func(_, lo, hi int) {
				sum.Add(int64(hi - lo))
			})
			if sum.Load() != 1000 {
				t.Fatalf("round %d: pool broken after panic: %d", round, sum.Load())
			}
		}
	})
}

// TestConcurrentNestedLoopsStress mixes independent outer loops from many
// goroutines, each nesting an inner loop per chunk, against a small pool.
func TestConcurrentNestedLoopsStress(t *testing.T) {
	withPools(t, 3, func(t *testing.T, p *Pool) {
		const drivers = 6
		const rows, cols = 16, 64
		errs := make(chan string, drivers)
		done := make(chan struct{}, drivers)
		for g := 0; g < drivers; g++ {
			go func() {
				defer func() { done <- struct{}{} }()
				hits := make([]int32, rows*cols)
				p.ForChunks(rows, exec.Auto, func(_, rlo, rhi int) {
					for r := rlo; r < rhi; r++ {
						r := r
						p.ForChunks(cols, exec.Fine, func(_, clo, chi int) {
							for c := clo; c < chi; c++ {
								atomic.AddInt32(&hits[r*cols+c], 1)
							}
						})
					}
				})
				for i, h := range hits {
					if h != 1 {
						errs <- "cell visited wrong number of times"
						_ = i
						return
					}
				}
			}()
		}
		for g := 0; g < drivers; g++ {
			<-done
		}
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	})
}

// TestStatsAccumulate sanity-checks the scheduler counters: loops on a
// multi-worker pool must record dispatch activity, and the counters must
// map onto counters.Set for reporting parity with the simulator.
func TestStatsAccumulate(t *testing.T) {
	p := New(4, StrategyStealing)
	defer p.Close()
	before := p.Stats()
	for i := 0; i < 50; i++ {
		p.ForChunks(1<<14, exec.Fine, func(_, lo, hi int) {})
	}
	d := p.Stats().Sub(before)
	if d.Steals() == 0 && d.Wakeups == 0 && d.Parks == 0 {
		t.Fatalf("no scheduling activity recorded: %+v", d)
	}
	if d.RemoteSteals != 0 {
		t.Fatalf("flat pool recorded remote steals: %+v", d)
	}
	cs := d.Counters()
	if cs.Steals() != float64(d.Steals()) || cs.Parks != float64(d.Parks) {
		t.Fatalf("Counters mapping mismatch: %+v vs %+v", cs, d)
	}
}
