package native

import (
	"sync/atomic"
)

// wsDeque is a Chase–Lev work-stealing deque of task words (see job.go for
// the word encoding). The owner pushes and pops at the bottom (LIFO, both
// wait-free); thieves remove from the top (FIFO) with a single CAS. The
// algorithm follows Chase & Lev, "Dynamic Circular Work-Stealing Deque"
// (SPAA'05), in the formulation of Lê et al. (PPoPP'13); Go's atomics are
// sequentially consistent, so no explicit fences are needed.
//
// Slots are single 64-bit words accessed atomically: a thief may read a slot
// that loses the subsequent top CAS, and word-sized atomic slots keep that
// benign read race-detector-clean (a multi-word task struct could not be
// read atomically).
//
// The zero value is not usable; call init first. All indices grow
// monotonically; the buffer is a circular window [top, bottom) over them and
// is grown (never shrunk) by the owner when full. Stale buffers remain valid
// for in-flight thieves because a retired buffer is never written again.
type wsDeque struct {
	bottom atomic.Int64 // next slot to push (owner only writes)
	top    atomic.Int64 // next slot to steal
	buf    atomic.Pointer[dqBuf]
}

type dqBuf struct {
	mask int64 // len(a) - 1; len is a power of two
	a    []atomic.Uint64
}

const dqInitialSize = 64

func (d *wsDeque) init() {
	d.buf.Store(newDqBuf(dqInitialSize))
}

func newDqBuf(size int64) *dqBuf {
	return &dqBuf{mask: size - 1, a: make([]atomic.Uint64, size)}
}

// size returns a snapshot of the number of queued words. Racy by nature;
// used only for work-presence heuristics and stats.
func (d *wsDeque) size() int64 {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return b - t
}

// push appends a word at the bottom. Owner only.
func (d *wsDeque) push(w uint64) {
	b := d.bottom.Load()
	t := d.top.Load()
	buf := d.buf.Load()
	if b-t > buf.mask {
		buf = d.grow(buf, t, b)
	}
	buf.a[b&buf.mask].Store(w)
	d.bottom.Store(b + 1)
}

// grow doubles the buffer, copying the live window [t, b). Owner only. The
// old buffer is left untouched so concurrent thieves holding it still read
// valid words for any top CAS they go on to win.
func (d *wsDeque) grow(old *dqBuf, t, b int64) *dqBuf {
	nb := newDqBuf((old.mask + 1) * 2)
	for i := t; i < b; i++ {
		nb.a[i&nb.mask].Store(old.a[i&old.mask].Load())
	}
	d.buf.Store(nb)
	return nb
}

// pop removes the most recently pushed word. Owner only.
func (d *wsDeque) pop() (uint64, bool) {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return 0, false
	}
	w := buf.a[b&buf.mask].Load()
	if t == b {
		// Last element: race against thieves for it via the top CAS.
		ok := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		if !ok {
			return 0, false
		}
		return w, true
	}
	return w, true
}

// steal removes the oldest word. Safe to call from any goroutine. retry
// reports that the steal lost a race (the deque may still be non-empty) as
// opposed to finding the deque empty.
func (d *wsDeque) steal() (w uint64, ok, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false, false
	}
	buf := d.buf.Load()
	w = buf.a[t&buf.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return 0, false, true
	}
	return w, true, false
}
