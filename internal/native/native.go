// Package native provides real goroutine-backed implementations of
// exec.Pool, one per scheduling strategy studied in the paper:
//
//   - ForkJoin: OpenMP-style static fork-join (the GNU and NVC-OMP
//     backends). The iteration space is cut once and every worker executes
//     a fixed, contiguous set of chunks.
//   - Stealing: TBB-style work stealing. Every worker owns a band of
//     chunks; idle workers steal half of a victim's remaining band.
//   - CentralQueue: HPX-style task futures over a shared queue. Every
//     chunk is an individual task popped from one central injector, which
//     maximizes load balance but pays a per-task scheduling cost.
//
// All strategies share one substrate: persistent workers, each owning a
// Chase–Lev work-stealing deque (deque.go) plus a small inbox for pinned
// submissions, a shared injector deque for external submissions, randomized
// victim selection, and a spin-then-park idle protocol — so the hot dispatch
// path never takes a mutex, unlike the seed's single mutex+cond LIFO queue,
// which made every strategy degenerate into the central-queue anti-pattern
// the paper identifies as the scalability killer. Loop chunks are scheduled
// as (job, index) words rather than per-chunk closures, so steady-state
// ForChunks dispatch does not allocate (job.go).
//
// Victim selection is optionally NUMA-aware (NewWithTopology): given a
// worker->node mapping, every steal path scans same-node victims
// (randomized within the node) before same-socket and remote ones, and the
// pool reports local and remote steal counts separately — the
// locality-ordered stealing that keeps first-touched data from being
// dragged across the fabric.
//
// Callers of ForChunks and Do help execute pending tasks while they wait,
// which makes nested parallelism (sort's merge recursion, scan's pass
// structure) deadlock-free on a fixed-size pool.
package native

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pstlbench/internal/exec"
	"pstlbench/internal/trace"
)

// Strategy selects how a Pool maps loop chunks onto workers.
type Strategy int

const (
	// StrategyForkJoin is the OpenMP-style static schedule.
	StrategyForkJoin Strategy = iota
	// StrategyStealing is the TBB-style work-stealing schedule.
	StrategyStealing
	// StrategyCentralQueue is the HPX-style shared-queue schedule.
	StrategyCentralQueue
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyForkJoin:
		return "forkjoin"
	case StrategyStealing:
		return "stealing"
	case StrategyCentralQueue:
		return "centralqueue"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Pool is a fixed-size goroutine pool implementing exec.Pool with a
// configurable scheduling strategy over per-worker work-stealing deques.
type Pool struct {
	strategy Strategy
	ws       []*worker

	// injector is the shared submission deque: Do thunks, central-queue
	// chunk tasks. Pushes are serialized by injMu (submission path only);
	// consumption is the lock-free steal path.
	injector wsDeque
	injMu    sync.Mutex

	idle      atomic.Int32 // number of workers parked on their semaphore
	closed    atomic.Bool
	closeCh   chan struct{}
	wg        sync.WaitGroup
	callerRng atomic.Uint64
	stats     []schedCounters // one per worker + one shared caller slot

	// NUMA-aware victim selection (nil topo = flat pool, single tier).
	// topo[w] is the node of worker w, with a trailing caller entry
	// (co-located with worker 0); stealOrd[w] is w's tiered victim order.
	topo     []int32
	stealOrd []stealOrder

	// Event tracing (NewTraced). tr is nil on untraced pools; tbufs holds
	// one ring per worker plus a trailing caller slot. Both are fixed at
	// construction, before the workers start, so the worker loops read
	// them without synchronization.
	tr    *trace.Tracer
	tbufs []*trace.Buf

	// Job table: jobs live permanently in their slot and are recycled via
	// the freelist, so a task word's slot half always resolves through
	// jobTab. The table is grow-only and cells are written once, so stale
	// slice headers held by readers stay valid for every slot they cover.
	jobMu  sync.Mutex
	jobTab atomic.Pointer[[]*job]
	free   []int32
}

var _ exec.Pool = (*Pool)(nil)
var _ exec.CancelPool = (*Pool)(nil)

// New creates a pool with the given number of persistent workers and
// scheduling strategy. workers < 1 is treated as 1. Close must be called to
// release the worker goroutines. The pool is flat: victims are scanned in
// one tier and every steal is reported local; use NewWithTopology to make
// victim selection NUMA-aware.
func New(workers int, strategy Strategy) *Pool {
	return NewWithTopology(workers, strategy, Topology{})
}

// NewWithTopology creates a pool whose steal paths (worker stealing,
// caller-side scavenging, and band half-stealing) scan victims in
// proximity order — same node first, randomized within each tier, then
// same socket, then remote — and whose SchedStats split steals into
// LocalSteals/RemoteSteals by whether the victim shared the thief's node.
// A zero Topology yields the flat pool New returns.
func NewWithTopology(workers int, strategy Strategy, t Topology) *Pool {
	return NewTraced(workers, strategy, t, nil)
}

// NewTraced creates a pool that additionally records scheduler events —
// chunk-execution spans, steals with victim and locality tier, parks, and
// wakeups — into tr, on wall-clock tracks 0..workers-1 (one per worker)
// plus track `workers` for the caller pseudo-worker. The tracer must be
// attached at construction so the worker loops can read it unsynchronized;
// it needs at least workers+1 tracks. A nil tr yields an untraced pool:
// every instrumented site then costs one inlined nil check (see
// trace.BenchmarkTraceDisabled).
func NewTraced(workers int, strategy Strategy, t Topology, tr *trace.Tracer) *Pool {
	if workers < 1 {
		workers = 1
	}
	if tr != nil && tr.Tracks() < workers+1 {
		panic(fmt.Sprintf("native: tracer has %d tracks, pool needs %d (workers+caller)",
			tr.Tracks(), workers+1))
	}
	validateTopology(t, workers)
	p := &Pool{strategy: strategy, closeCh: make(chan struct{})}
	if !t.flat() {
		p.topo = make([]int32, workers+1)
		for w := 0; w < workers; w++ {
			p.topo[w] = int32(t.Nodes[w])
		}
		p.topo[workers] = p.topo[0] // caller pseudo-worker rides with worker 0
	}
	p.stealOrd = buildStealOrders(workers, t)
	if tr != nil {
		p.tr = tr
		p.tbufs = make([]*trace.Buf, workers+1)
		for i := range p.tbufs {
			p.tbufs[i] = tr.Buf(i)
		}
	}
	p.injector.init()
	p.stats = make([]schedCounters, workers+1)
	p.callerRng.Store(0x9E3779B97F4A7C15)
	p.ws = make([]*worker, workers)
	for i := range p.ws {
		w := &worker{park: make(chan struct{}, 1), rng: splitmix64(uint64(i) + 1)}
		w.dq.init()
		p.ws[i] = w
	}
	tab := make([]*job, 0, 16)
	p.jobTab.Store(&tab)
	p.wg.Add(workers)
	for i := range p.ws {
		go p.workerLoop(i)
	}
	return p
}

// mix64 is the splitmix64 output finalizer: a bijective avalanche mix. The
// caller pseudo-worker's RNG feeds its additive counter through this; the
// raw counter alone steps victim starts in a fixed arithmetic pattern.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// splitmix64 seeds the per-worker xorshift generators.
func splitmix64(x uint64) uint64 {
	return mix64(x + 0x9E3779B97F4A7C15)
}

// Workers returns the number of worker goroutines.
func (p *Pool) Workers() int { return len(p.ws) }

// Strategy returns the pool's scheduling strategy.
func (p *Pool) Strategy() Strategy { return p.strategy }

// Stats returns the accumulated scheduling counters of the pool.
func (p *Pool) Stats() SchedStats {
	var s SchedStats
	for i := range p.stats {
		c := &p.stats[i]
		s.LocalSteals += c.localSteals.Load()
		s.RemoteSteals += c.remoteSteals.Load()
		s.Parks += c.parks.Load()
		s.Wakeups += c.wakeups.Load()
		s.EmptySpins += c.emptySpins.Load()
	}
	return s
}

// Close shuts down the worker goroutines. Pending tasks are drained before
// the workers exit. Close is idempotent: a long-running owner (the serving
// layer) may close on several shutdown paths without coordinating. The pool
// must not be used after Close; Do and ForChunks on a closed pool panic.
func (p *Pool) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return // already closed (or closing on another goroutine)
	}
	close(p.closeCh)
	p.wg.Wait()
}

// checkOpen panics when the pool has been closed: submitting to a closed
// pool would otherwise park the caller forever on a job no worker will ever
// drain, which in a long-running process is an undebuggable hang.
func (p *Pool) checkOpen(op string) {
	if p.closed.Load() {
		panic("native: " + op + " called on a closed Pool")
	}
}

// acquireJob takes a recycled job descriptor from the freelist, growing the
// job table when none is free. The mutex is on the per-call submission path,
// never on the per-chunk dispatch path.
func (p *Pool) acquireJob() *job {
	p.jobMu.Lock()
	if n := len(p.free); n > 0 {
		slot := p.free[n-1]
		p.free = p.free[:n-1]
		j := (*p.jobTab.Load())[slot]
		p.jobMu.Unlock()
		return j
	}
	tab := *p.jobTab.Load()
	j := &job{pool: p, slot: int32(len(tab))}
	j.wcond.L = &j.wmu
	// In-place append: cells beyond the old length are invisible to stale
	// readers, and existing cells never change, so publishing the longer
	// header is safe.
	ntab := append(tab, j)
	p.jobTab.Store(&ntab)
	p.jobMu.Unlock()
	return j
}

// releaseJob returns a completed job's slot to the freelist, dropping body
// references so the pool does not retain caller closures.
func (p *Pool) releaseJob(j *job) {
	j.body = nil
	j.cancel = nil
	j.fns = j.fns[:0]
	p.jobMu.Lock()
	p.free = append(p.free, j.slot)
	p.jobMu.Unlock()
}

// Do runs the thunks, possibly concurrently, and returns after all have
// completed. The calling goroutine executes at least one thunk itself and
// helps drain the pool while waiting, so nested Do calls cannot deadlock.
func (p *Pool) Do(fns ...func()) {
	p.checkOpen("Do")
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	j := p.acquireJob()
	defer p.releaseJob(j)
	j.fns = append(j.fns[:0], fns...)
	j.reset(kindThunk, len(fns)-1)
	p.injMu.Lock()
	for i := 1; i < len(fns); i++ {
		p.injector.push(encodeTask(j.slot, int32(i)))
	}
	p.injMu.Unlock()
	p.wake(len(fns) - 1)
	// Work-first: run the first thunk inline, then help with the rest.
	// A panic from the inline thunk is held until the siblings finish, so
	// no sibling is left running against unwound caller state; the inline
	// panic takes precedence over sibling panics.
	var inlinePanic any
	func() {
		defer func() { inlinePanic = recover() }()
		fns[0]()
	}()
	p.wait(j)
	if inlinePanic != nil {
		panic(inlinePanic)
	}
	j.rethrow()
}

// ForChunks partitions [0, n) according to g and schedules the chunks per
// the pool strategy. It returns after every chunk has completed. The body's
// worker index is in [0, Workers()]: the value Workers() identifies the
// calling goroutine when it helps execute chunks.
func (p *Pool) ForChunks(n int, g exec.Grain, body func(worker, lo, hi int)) {
	p.ForChunksCancel(n, g, nil, body)
}

// ForChunksCancel is ForChunks with a cooperative cancellation token: the
// dispatch path checks c before every chunk, so once the token fires the
// job's remaining chunks complete as no-ops and the pool's workers are free
// within one chunk boundary. A nil token makes it identical to ForChunks —
// the per-chunk check is then one inlined nil test (BenchmarkCancelOverhead
// pins the cost next to BenchmarkSchedulerOverhead). Like ForChunks it
// returns only after every scheduled chunk has completed or been skipped;
// whether the loop ran to completion is read from the token.
func (p *Pool) ForChunksCancel(n int, g exec.Grain, c *exec.Cancel, body func(worker, lo, hi int)) {
	p.checkOpen("ForChunks")
	if n <= 0 || c.Canceled() {
		return
	}
	P := len(p.ws)
	chunks := g.ChunkCount(n, P)
	if chunks <= 1 {
		body(P, 0, n)
		return
	}
	j := p.acquireJob()
	defer p.releaseJob(j)
	j.body = body
	j.cancel = c
	j.n = n
	j.chunks = chunks
	j.grain = g
	j.gw = P
	j.guided = g.IsGuided()
	j.base = n / chunks
	j.rem = n % chunks

	switch p.strategy {
	case StrategyStealing:
		p.submitBands(j, chunks)
	case StrategyCentralQueue:
		p.submitQueue(j, chunks)
	default: // StrategyForkJoin
		p.submitStatic(j, chunks)
	}
	p.wait(j)
	j.rethrow()
}

// submitStatic schedules min(P, chunks) parts, part i executing chunks
// i, i+parts, i+2*parts, ... like OpenMP schedule(static). Parts are pinned
// to their home worker's inbox; they migrate only if an idle thief raids the
// inbox of a busy owner.
func (p *Pool) submitStatic(j *job, chunks int) {
	parts := len(p.ws)
	if parts > chunks {
		parts = chunks
	}
	j.parts = parts
	j.reset(kindStatic, parts)
	for part := 0; part < parts; part++ {
		p.ws[part].inbox.put(encodeTask(j.slot, int32(part)))
	}
	p.wake(parts)
}

// submitBands gives each of min(P, chunks) parts a contiguous band of chunk
// indices pinned to its home worker; exhausted parts steal half of a
// sibling band (job.runBand).
func (p *Pool) submitBands(j *job, chunks int) {
	parts := len(p.ws)
	if parts > chunks {
		parts = chunks
	}
	j.parts = parts
	if cap(j.bands) < parts {
		j.bands = make([]chunkBand, parts)
	} else {
		j.bands = j.bands[:parts]
	}
	per := chunks / parts
	rem := chunks % parts
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + per
		if i < rem {
			hi++
		}
		j.bands[i].state.Store(packBand(int32(lo), int32(hi)))
		lo = hi
	}
	j.reset(kindBand, parts)
	for part := 0; part < parts; part++ {
		p.ws[part].inbox.put(encodeTask(j.slot, int32(part)))
	}
	p.wake(parts)
}

// submitQueue pushes every chunk as an individual task word onto the shared
// injector deque, in the style of HPX's per-iteration-range futures. Words
// are pushed in ascending order and the injector is consumed from the top,
// preserving the front-to-back sweep of the other strategies; every chunk
// dispatch is one CAS on the shared injector — the central contention point
// whose cost the paper measures.
func (p *Pool) submitQueue(j *job, chunks int) {
	j.reset(kindChunk, chunks)
	p.injMu.Lock()
	for i := 0; i < chunks; i++ {
		p.injector.push(encodeTask(j.slot, int32(i)))
	}
	p.injMu.Unlock()
	p.wake(chunks)
}
