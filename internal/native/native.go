// Package native provides real goroutine-backed implementations of
// exec.Pool, one per scheduling strategy studied in the paper:
//
//   - ForkJoin: OpenMP-style static fork-join (the GNU and NVC-OMP
//     backends). The iteration space is cut once and every worker executes
//     a fixed, contiguous set of chunks.
//   - Stealing: TBB-style work stealing. Every worker owns a band of
//     chunks; idle workers steal half of a victim's remaining band.
//   - CentralQueue: HPX-style task futures over a shared queue. Every
//     chunk is an individual task popped from one central queue, which
//     maximizes load balance but pays a per-task scheduling cost.
//
// All pools share one substrate: persistent worker goroutines draining a
// LIFO task queue. Callers of ForChunks and Do help execute pending tasks
// while they wait, which makes nested parallelism (sort's merge recursion,
// scan's pass structure) deadlock-free on a fixed-size pool.
package native

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pstlbench/internal/exec"
)

// Strategy selects how a Pool maps loop chunks onto workers.
type Strategy int

const (
	// StrategyForkJoin is the OpenMP-style static schedule.
	StrategyForkJoin Strategy = iota
	// StrategyStealing is the TBB-style work-stealing schedule.
	StrategyStealing
	// StrategyCentralQueue is the HPX-style shared-queue schedule.
	StrategyCentralQueue
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyForkJoin:
		return "forkjoin"
	case StrategyStealing:
		return "stealing"
	case StrategyCentralQueue:
		return "centralqueue"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// task is one schedulable unit. Completion is reported to its group.
type task struct {
	fn func(worker int)
	g  *group
}

// group tracks the completion of a set of sibling tasks and captures the
// first panic raised by any of them.
type group struct {
	pending  atomic.Int64
	done     chan struct{}
	panicOne sync.Once
	panicVal any
}

func newGroup(n int) *group {
	g := &group{done: make(chan struct{})}
	g.pending.Store(int64(n))
	return g
}

func (g *group) finish(recovered any) {
	if recovered != nil {
		g.panicOne.Do(func() { g.panicVal = recovered })
	}
	if g.pending.Add(-1) == 0 {
		close(g.done)
	}
}

// rethrow re-raises the first captured panic, if any. It must only be
// called after the group's done channel is closed.
func (g *group) rethrow() {
	if g.panicVal != nil {
		panic(g.panicVal)
	}
}

// Pool is a fixed-size goroutine pool implementing exec.Pool with a
// configurable scheduling strategy.
type Pool struct {
	strategy Strategy
	workers  int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []task // LIFO
	closed bool

	wg sync.WaitGroup
}

var _ exec.Pool = (*Pool)(nil)

// New creates a pool with the given number of persistent workers and
// scheduling strategy. workers < 1 is treated as 1. Close must be called to
// release the worker goroutines.
func New(workers int, strategy Strategy) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{strategy: strategy, workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.workerLoop(w)
	}
	return p
}

// Workers returns the number of worker goroutines.
func (p *Pool) Workers() int { return p.workers }

// Strategy returns the pool's scheduling strategy.
func (p *Pool) Strategy() Strategy { return p.strategy }

// Close shuts down the worker goroutines. Pending tasks are drained before
// the workers exit. The pool must not be used after Close.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pool) workerLoop(w int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		t := p.popLocked()
		p.mu.Unlock()
		runTask(t, w)
	}
}

func (p *Pool) popLocked() task {
	last := len(p.queue) - 1
	t := p.queue[last]
	p.queue[last] = task{}
	p.queue = p.queue[:last]
	return t
}

func (p *Pool) tryPop() (task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return task{}, false
	}
	return p.popLocked(), true
}

func (p *Pool) push(ts ...task) {
	p.mu.Lock()
	p.queue = append(p.queue, ts...)
	if len(ts) > 1 {
		p.cond.Broadcast()
	} else {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// runTask executes t and reports completion (and any panic) to its group.
func runTask(t task, worker int) {
	defer func() { t.g.finish(recover()) }()
	t.fn(worker)
}

// help blocks until the group completes, executing pending tasks from the
// pool queue in the meantime. The caller participates with the pseudo-worker
// index workers (i.e. one past the last pool worker). It does not rethrow
// captured panics; use wait for that.
func (p *Pool) help(g *group) {
	callerID := p.workers
	for {
		select {
		case <-g.done:
			return
		default:
		}
		if t, ok := p.tryPop(); ok {
			runTask(t, callerID)
			continue
		}
		<-g.done
		return
	}
}

// wait blocks until the group completes (helping with queued tasks) and
// re-raises the first panic captured by any task in the group.
func (p *Pool) wait(g *group) {
	p.help(g)
	g.rethrow()
}

// Do runs the thunks, possibly concurrently, and returns after all have
// completed. The calling goroutine executes at least one thunk itself and
// helps drain the queue while waiting, so nested Do calls cannot deadlock.
func (p *Pool) Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	g := newGroup(len(fns) - 1)
	ts := make([]task, 0, len(fns)-1)
	for _, fn := range fns[1:] {
		fn := fn
		ts = append(ts, task{fn: func(int) { fn() }, g: g})
	}
	p.push(ts...)
	// Work-first: run the first thunk inline, then help with the rest.
	// A panic from the inline thunk is held until the siblings finish, so
	// no sibling is left running against unwound caller state; the inline
	// panic takes precedence over sibling panics.
	var inlinePanic any
	func() {
		defer func() { inlinePanic = recover() }()
		fns[0]()
	}()
	p.help(g)
	if inlinePanic != nil {
		panic(inlinePanic)
	}
	g.rethrow()
}

// ForChunks partitions [0, n) according to g and schedules the chunks per
// the pool strategy. It returns after every chunk has completed. The body's
// worker index is in [0, Workers()]: the value Workers() identifies the
// calling goroutine when it helps execute chunks.
func (p *Pool) ForChunks(n int, g exec.Grain, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := g.Partition(n, p.workers)
	if len(chunks) == 1 {
		body(p.workers, chunks[0].Lo, chunks[0].Hi)
		return
	}
	switch p.strategy {
	case StrategyForkJoin:
		p.forChunksStatic(chunks, body)
	case StrategyStealing:
		p.forChunksStealing(chunks, body)
	case StrategyCentralQueue:
		p.forChunksQueue(chunks, body)
	default:
		p.forChunksStatic(chunks, body)
	}
}

// forChunksStatic assigns chunk i to worker i mod P, like OpenMP
// schedule(static).
func (p *Pool) forChunksStatic(chunks []exec.Range, body func(worker, lo, hi int)) {
	parts := p.workers
	if parts > len(chunks) {
		parts = len(chunks)
	}
	grp := newGroup(parts)
	for part := 0; part < parts; part++ {
		part := part
		p.push(task{g: grp, fn: func(worker int) {
			for i := part; i < len(chunks); i += parts {
				body(worker, chunks[i].Lo, chunks[i].Hi)
			}
		}})
	}
	p.wait(grp)
}

// band is a shared range of chunk indices owned by one worker. The owner
// takes chunks from the front; thieves split off the back half.
type band struct {
	mu     sync.Mutex
	lo, hi int // chunk indices [lo, hi)
}

// take removes the front chunk index, or returns ok=false if empty.
func (b *band) take() (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.lo >= b.hi {
		return 0, false
	}
	i := b.lo
	b.lo++
	return i, true
}

// stealHalf removes the back half of the band, returning the stolen chunk
// index range.
func (b *band) stealHalf() (lo, hi int, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.hi - b.lo
	if n < 2 {
		// Leave single remaining chunks to their owner; stealing them
		// buys nothing and doubles the synchronization.
		return 0, 0, false
	}
	take := n / 2
	lo, hi = b.hi-take, b.hi
	b.hi = lo
	return lo, hi, true
}

// forChunksStealing gives each worker-part a contiguous band of chunk
// indices; exhausted parts steal half of the fullest sibling band.
func (p *Pool) forChunksStealing(chunks []exec.Range, body func(worker, lo, hi int)) {
	parts := p.workers
	if parts > len(chunks) {
		parts = len(chunks)
	}
	bands := make([]*band, parts)
	per := len(chunks) / parts
	rem := len(chunks) % parts
	lo := 0
	for i := range bands {
		hi := lo + per
		if i < rem {
			hi++
		}
		bands[i] = &band{lo: lo, hi: hi}
		lo = hi
	}
	grp := newGroup(parts)
	for part := 0; part < parts; part++ {
		part := part
		p.push(task{g: grp, fn: func(worker int) {
			p.runBand(part, bands, chunks, worker, body)
		}})
	}
	p.wait(grp)
}

// runBand drains the part's own band, then steals from siblings until no
// band has stealable work left.
func (p *Pool) runBand(part int, bands []*band, chunks []exec.Range, worker int, body func(worker, lo, hi int)) {
	own := bands[part]
	for {
		if i, ok := own.take(); ok {
			body(worker, chunks[i].Lo, chunks[i].Hi)
			continue
		}
		// Steal the biggest half available among the victims.
		stolen := false
		for off := 1; off < len(bands); off++ {
			victim := bands[(part+off)%len(bands)]
			if lo, hi, ok := victim.stealHalf(); ok {
				own.mu.Lock()
				own.lo, own.hi = lo, hi
				own.mu.Unlock()
				stolen = true
				break
			}
		}
		if !stolen {
			return
		}
	}
}

// forChunksQueue pushes every chunk as an individual task onto the central
// queue, in the style of HPX's per-iteration-range futures.
func (p *Pool) forChunksQueue(chunks []exec.Range, body func(worker, lo, hi int)) {
	grp := newGroup(len(chunks))
	ts := make([]task, 0, len(chunks))
	// Push in reverse so the LIFO queue pops chunks in ascending order,
	// preserving the front-to-back sweep that the other strategies have.
	for i := len(chunks) - 1; i >= 0; i-- {
		c := chunks[i]
		ts = append(ts, task{g: grp, fn: func(worker int) {
			body(worker, c.Lo, c.Hi)
		}})
	}
	p.push(ts...)
	p.wait(grp)
}
