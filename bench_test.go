package pstlbench

// One benchmark per table and figure of the paper, plus native benchmarks
// of the real parallel algorithms library. The experiment benchmarks run
// the full simulated experiment at a reduced problem scale (2^22 elements
// instead of 2^30) so `go test -bench=.` stays fast; `pstlreport` runs
// them at full scale. Key figures are attached as benchmark metrics.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/core"
	"pstlbench/internal/exec"
	"pstlbench/internal/experiments"
	"pstlbench/internal/machine"
	"pstlbench/internal/native"
	"pstlbench/internal/simexec"
	"pstlbench/internal/skeleton"
	"pstlbench/internal/stream"
	"pstlbench/internal/tune"
)

// benchScale reduces the paper's 2^30 to 2^22 for the -bench runs.
const benchScale = 8

func runExperiment(b *testing.B, id string) {
	b.Helper()
	run := experiments.ByID(id)
	if run == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var out string
	for i := 0; i < b.N; i++ {
		out = run(experiments.Config{Scale: benchScale}).String()
	}
	if len(out) == 0 {
		b.Fatal("empty report")
	}
}

// Benchmarks regenerating each table/figure (simulated machines).

func BenchmarkTab2Stream(b *testing.B)         { runExperiment(b, "tab2") }
func BenchmarkFig1Allocator(b *testing.B)      { runExperiment(b, "fig1") }
func BenchmarkFig2ForEachProblem(b *testing.B) { runExperiment(b, "fig2") }
func BenchmarkFig3ForEachStrong(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkTab3Counters(b *testing.B)       { runExperiment(b, "tab3") }
func BenchmarkFig4Find(b *testing.B)           { runExperiment(b, "fig4") }
func BenchmarkFig5Scan(b *testing.B)           { runExperiment(b, "fig5") }
func BenchmarkFig6Reduce(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkTab4Counters(b *testing.B)       { runExperiment(b, "tab4") }
func BenchmarkFig7Sort(b *testing.B)           { runExperiment(b, "fig7") }
func BenchmarkTab5Speedups(b *testing.B)       { runExperiment(b, "tab5") }
func BenchmarkTab6Efficiency(b *testing.B)     { runExperiment(b, "tab6") }
func BenchmarkTab7BinarySize(b *testing.B)     { runExperiment(b, "tab7") }
func BenchmarkFig8GPUForEach(b *testing.B)     { runExperiment(b, "fig8") }
func BenchmarkFig9GPUReduce(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkExtARM(b *testing.B)             { runExperiment(b, "ext-arm") }
func BenchmarkExtNUMASteal(b *testing.B)       { runExperiment(b, "ext-numasteal") }
func BenchmarkExtAdaptive(b *testing.B)        { runExperiment(b, "ext-adaptive") }
func BenchmarkAblGrain(b *testing.B)           { runExperiment(b, "abl-grain") }
func BenchmarkAblContention(b *testing.B)      { runExperiment(b, "abl-contention") }
func BenchmarkAblCheapFutures(b *testing.B)    { runExperiment(b, "abl-hpx") }

// BenchmarkSimInvocation measures the simulator's own throughput: one
// virtual invocation per iteration, reporting the modeled time as a
// metric.
func BenchmarkSimInvocation(b *testing.B) {
	m := machine.MachC()
	var virtual float64
	for i := 0; i < b.N; i++ {
		r := simexec.Run(simexec.Config{
			Machine: m, Backend: backend.GCCTBB(),
			Workload: skeleton.Workload{Op: backend.OpSort, N: 1 << 30, ElemBytes: 8, Kit: 1},
			Threads:  128, Alloc: allocsim.FirstTouch,
		})
		virtual = r.Seconds
	}
	b.ReportMetric(virtual, "virtual-s/call")
}

// BenchmarkStream measures the native STREAM triad on the host.
func BenchmarkStream(b *testing.B) {
	var r stream.Result
	for i := 0; i < b.N; i++ {
		r = stream.Native(runtime.GOMAXPROCS(0), 1<<22, 1)
	}
	b.ReportMetric(r.Triad, "GB/s-triad")
}

// Native benchmarks of the real library (this host, real goroutines).

func nativePolicy(b *testing.B) core.Policy {
	b.Helper()
	pool := native.New(runtime.GOMAXPROCS(0), native.StrategyStealing)
	b.Cleanup(pool.Close)
	return core.Par(pool)
}

func BenchmarkNativeForEach(b *testing.B) {
	p := nativePolicy(b)
	data := make([]float64, 1<<20)
	kernel := func(v *float64) { *v++ }
	b.SetBytes(int64(len(data)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ForEach(p, data, kernel)
	}
}

func BenchmarkNativeReduce(b *testing.B) {
	p := nativePolicy(b)
	data := make([]float64, 1<<20)
	core.Generate(p, data, func(i int) float64 { return float64(i) })
	b.SetBytes(int64(len(data)) * 8)
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s = core.Sum(p, data, 0)
	}
	_ = s
}

func BenchmarkNativeFind(b *testing.B) {
	p := nativePolicy(b)
	data := make([]float64, 1<<20)
	core.Generate(p, data, func(i int) float64 { return float64(i + 1) })
	b.SetBytes(int64(len(data)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.Find(p, data, float64(len(data)/2)) < 0 {
			b.Fatal("miss")
		}
	}
}

func BenchmarkNativeInclusiveScan(b *testing.B) {
	p := nativePolicy(b)
	data := make([]float64, 1<<20)
	dst := make([]float64, len(data))
	core.Generate(p, data, func(i int) float64 { return 1 })
	b.SetBytes(int64(len(data)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.InclusiveSum(p, dst, data)
	}
}

func BenchmarkNativeSort(b *testing.B) {
	p := nativePolicy(b)
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 1<<18)
	b.SetBytes(int64(len(data)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := range data {
			data[j] = rng.Float64()
		}
		b.StartTimer()
		core.Sort(p, data)
	}
}

func BenchmarkNativeTransformReduce(b *testing.B) {
	p := nativePolicy(b)
	x := make([]float64, 1<<20)
	y := make([]float64, 1<<20)
	core.Generate(p, x, func(i int) float64 { return float64(i) })
	core.Generate(p, y, func(i int) float64 { return 2 })
	b.SetBytes(int64(len(x)) * 16)
	b.ResetTimer()
	var dot float64
	for i := 0; i < b.N; i++ {
		dot = core.TransformReduceBinary(p, x, y, 0.0,
			func(a, c float64) float64 { return a + c },
			func(a, c float64) float64 { return a * c })
	}
	_ = dot
}

// Native pool microbenchmarks: the per-invocation overhead of each
// scheduling strategy (the quantity the paper's small-size crossovers are
// made of).
// BenchmarkSchedulerOverhead measures pure dispatch cost: an empty-body
// ForChunks against each scheduling strategy across worker counts. With no
// useful work per chunk, the entire measured time is the scheduler — task
// publication, deque traffic, steals, parks and wakeups. This is the
// microbenchmark behind the dispatch-overhead axis that separates the
// backends in the paper's small-n regime.
func BenchmarkSchedulerOverhead(b *testing.B) {
	const n = 1 << 16
	for _, s := range []native.Strategy{native.StrategyForkJoin, native.StrategyStealing, native.StrategyCentralQueue} {
		for _, workers := range []int{1, 2, 4, 8, 16} {
			s, workers := s, workers
			b.Run(fmt.Sprintf("%s/w%d", s, workers), func(b *testing.B) {
				pool := native.New(workers, s)
				defer pool.Close()
				body := func(worker, lo, hi int) {}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pool.ForChunks(n, exec.Fine, body)
				}
			})
		}
	}
}

// BenchmarkCancelOverhead pins the cost the cancellation token adds to the
// dispatch path, alongside BenchmarkSchedulerOverhead: the same empty-body
// ForChunks, run uncancellable (plain), with a nil token (the disabled
// inlined check), and with a live never-fired token (one atomic load per
// chunk). The ns/chunk deltas between the variants are the per-chunk cost
// of cancellability — they must stay within the noise of the dispatch
// itself (≤ ~2 ns), with zero allocations.
func BenchmarkCancelOverhead(b *testing.B) {
	const n = 1 << 16
	workers := 4
	variants := []struct {
		name string
		run  func(p *native.Pool, c *exec.Cancel, body func(worker, lo, hi int))
	}{
		{"plain", func(p *native.Pool, _ *exec.Cancel, body func(worker, lo, hi int)) {
			p.ForChunks(n, exec.Fine, body)
		}},
		{"nil-token", func(p *native.Pool, _ *exec.Cancel, body func(worker, lo, hi int)) {
			p.ForChunksCancel(n, exec.Fine, nil, body)
		}},
		{"live-token", func(p *native.Pool, c *exec.Cancel, body func(worker, lo, hi int)) {
			p.ForChunksCancel(n, exec.Fine, c, body)
		}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			pool := native.New(workers, native.StrategyStealing)
			defer pool.Close()
			body := func(worker, lo, hi int) {}
			chunks := exec.Fine.ChunkCount(n, workers)
			c := &exec.Cancel{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.run(pool, c, body)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(chunks), "ns/chunk")
		})
	}
}

// BenchmarkAdaptiveGrain compares fixed, auto, and adaptive grain
// selection on the native library's for_each and reduce, and measures the
// tuner's decision overhead. The adaptive sub-benchmarks drive a real
// propose/observe loop from the pool's scheduler counters — the steady
// state after convergence is one locked proposal plus one observation per
// call, which the decision-overhead sub-benchmark pins at well under 1 µs
// with zero allocations.
func BenchmarkAdaptiveGrain(b *testing.B) {
	const n = 1 << 20
	workers := runtime.GOMAXPROCS(0)
	grains := []struct {
		name string
		g    exec.Grain
	}{
		{"static", exec.Static},
		{"auto", exec.Auto},
		{"fine", exec.Fine},
	}
	algos := []struct {
		name string
		run  func(p core.Policy, data []float64)
	}{
		{"for_each", func(p core.Policy, data []float64) {
			core.ForEach(p, data, func(v *float64) { *v++ })
		}},
		{"reduce", func(p core.Policy, data []float64) {
			if core.Sum(p, data, 0) < 0 {
				b.Fatal("unreachable")
			}
		}},
	}
	for _, a := range algos {
		a := a
		for _, g := range grains {
			g := g
			b.Run(fmt.Sprintf("%s/%s", a.name, g.name), func(b *testing.B) {
				pool := native.New(workers, native.StrategyStealing)
				defer pool.Close()
				p := core.Par(pool).WithGrain(g.g)
				data := make([]float64, n)
				b.SetBytes(n * 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a.run(p, data)
				}
			})
		}
		b.Run(fmt.Sprintf("%s/adaptive", a.name), func(b *testing.B) {
			pool := native.New(workers, native.StrategyStealing)
			defer pool.Close()
			tuner := tune.New(tune.Options{})
			p := core.Par(pool).WithGrainSource(tuner.Site(a.name))
			key := tune.Key{Site: a.name, N: n, Workers: pool.Workers()}
			data := make([]float64, n)
			b.SetBytes(n * 8)
			b.ResetTimer()
			prev := pool.Stats()
			for i := 0; i < b.N; i++ {
				start := nowSeconds()
				a.run(p, data)
				cur := pool.Stats()
				obs := tune.FromCounters(cur.Sub(prev).Counters())
				obs.Seconds = nowSeconds() - start
				tuner.Observe(key, obs)
				prev = cur
			}
			b.StopTimer()
			if chunk, _, ok := tuner.Best(key); ok {
				b.ReportMetric(float64(chunk), "chunk")
			}
		})
	}

	// Decision overhead: one Propose + one Observe against a converged
	// operating point — the tuner work added to every tuned invocation.
	b.Run("decision-overhead", func(b *testing.B) {
		tuner := tune.New(tune.Options{})
		key := tune.Key{Site: "overhead", N: n, Workers: workers}
		// Drive to the locked steady state first.
		for i := 0; i < 16; i++ {
			tuner.Propose(key)
			tuner.Observe(key, tune.Observation{Seconds: 1e-3})
		}
		if !tuner.Converged(key) {
			b.Fatal("tuner did not lock during warmup")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tuner.Propose(key)
			tuner.Observe(key, tune.Observation{Seconds: 1e-3})
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/decision")
	})
}

// nowSeconds is a monotonic second count for manual interval timing.
func nowSeconds() float64 { return float64(time.Now().UnixNano()) * 1e-9 }

// BenchmarkNUMASteal exercises the tiered victim scan against the flat one
// on an imbalanced workload that forces stealing: the first chunk band
// carries extra work, so every other worker drains its own deque and goes
// hunting. Sub-benchmarks split the workers over 1 (flat), 2 and 4 virtual
// NUMA nodes; the reported remote-steals/op and local-steals/op show the
// tiered scan keeping steals on-node while the flat pool has no notion of
// distance at all.
func BenchmarkNUMASteal(b *testing.B) {
	const n = 1 << 16
	workers := runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8 // keep the node splits non-degenerate on small hosts
	}
	for _, nodes := range []int{1, 2, 4} {
		nodes := nodes
		b.Run(fmt.Sprintf("nodes%d/w%d", nodes, workers), func(b *testing.B) {
			topo := native.Topology{}
			if nodes > 1 {
				topo = native.SplitTopology(workers, nodes)
			}
			pool := native.NewWithTopology(workers, native.StrategyStealing, topo)
			defer pool.Close()
			spin := func(k int) {
				acc := 1.0
				for i := 0; i < k; i++ {
					acc = acc*1.0000001 + 1
				}
				if acc < 0 {
					b.Fatal("unreachable")
				}
			}
			body := func(worker, lo, hi int) {
				if lo == 0 {
					spin(4096) // skew: band 0 is the slow one, everyone steals
				}
				spin(hi - lo)
			}
			before := pool.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.ForChunks(n, exec.Fine, body)
			}
			b.StopTimer()
			d := pool.Stats().Sub(before)
			b.ReportMetric(float64(d.LocalSteals)/float64(b.N), "local-steals/op")
			b.ReportMetric(float64(d.RemoteSteals)/float64(b.N), "remote-steals/op")
		})
	}
}

func BenchmarkPoolOverhead(b *testing.B) {
	for _, s := range []native.Strategy{native.StrategyForkJoin, native.StrategyStealing, native.StrategyCentralQueue} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			pool := native.New(runtime.GOMAXPROCS(0), s)
			defer pool.Close()
			p := core.Par(pool)
			data := make([]float64, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.ForEach(p, data, func(v *float64) { *v = 0 })
			}
		})
	}
}
