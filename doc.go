// Package pstlbench is a Go reproduction of "Exploring Scalability in C++
// Parallel STL Implementations" (Laso, Krupitza, Hunold — ICPP 2024).
//
// The repository contains three systems:
//
//   - a parallel algorithms library implementing the C++17 parallel STL
//     surface generically over pluggable goroutine scheduling strategies
//     (internal/core, internal/exec, internal/native);
//   - a discrete-event performance simulator reproducing the paper's five
//     evaluation platforms — three NUMA multicores and two CUDA GPUs —
//     and the cost structure of the five compiler/runtime backends the
//     paper compares (internal/machine, internal/memsys, internal/backend,
//     internal/skeleton, internal/simexec, internal/gpusim);
//   - a benchmarking layer: a Google-Benchmark-style harness, the STREAM
//     calibration kernel, and one experiment definition per figure and
//     table of the paper (internal/harness, internal/stream,
//     internal/experiments).
//
// See README.md for usage, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-model results.
//
// The root-level benchmarks in bench_test.go regenerate each table and
// figure at a reduced problem scale; the pstlreport command produces them
// at full scale.
package pstlbench
