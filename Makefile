GO ?= go

.PHONY: all vet build test race bench serve loadgen check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the work-stealing scheduler,
# the algorithms that drive it, the event-tracing layer its workers write
# to, the simulator that emits virtual-time traces, the adaptive grain
# tuner fed concurrently by harness observations, and the multi-tenant
# job server racing submits against cancels on one shared pool.
race:
	$(GO) test -race ./internal/native/... ./internal/core/... ./internal/trace/... ./internal/simexec/... ./internal/tune/... ./internal/serve/...

bench:
	$(GO) test -run 'xxx' -bench 'SchedulerOverhead' -benchtime 1000x .

# Run the algorithm-serving daemon on the local pool.
serve:
	$(GO) run ./cmd/pstld -addr :8080 -sched wfq

# Closed-loop load generator: a heavy and a light tenant on one pool;
# swap -sched fifo to see the light tenant's p99 blow up.
loadgen:
	$(GO) run ./cmd/pstld -loadgen -duration 2s -sched wfq \
		-spec "big:1:sort:1048576:4,small:1:reduce:65536:2"

check: vet build test race
