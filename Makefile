GO ?= go

.PHONY: all vet build test race bench fusion serve shard obs cluster stream loadgen check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the work-stealing scheduler,
# the algorithms that drive it, the fused pipelines compiled onto it, the
# event-tracing layer its workers write to, the simulator that emits
# virtual-time traces, the adaptive grain tuner fed concurrently by harness
# observations, the multi-tenant job server racing batched submits against
# cancels on one shared pool, the sharded router racing submits and
# cancels against a mid-backlog kill and log replay, the cluster transport
# racing retries, polls, and heartbeats against abrupt worker death, and
# the observability layer whose atomic instruments those servers update
# concurrently, and the streaming plane racing pushes, window closes, and
# job completions against flush.
race:
	$(GO) test -race ./internal/native/... ./internal/core/... ./internal/pipeline/... ./internal/trace/... ./internal/simexec/... ./internal/tune/... ./internal/serve/... ./internal/shard/... ./internal/cluster/... ./internal/obs/... ./internal/flow/...

bench:
	$(GO) test -run 'xxx' -bench 'SchedulerOverhead' -benchtime 1000x .

# Fused-pipeline comparison: the 3-stage chain as staged core passes vs one
# fused chunk-granular pass (Go benchmarks, then the pstlbench chain rows
# with modeled traffic columns, then the full ext-fusion report with the
# simulator's predicted traffic drop next to the measured native win).
fusion:
	$(GO) test -run 'xxx' -bench 'FusedVsStaged' -benchtime 3x ./internal/pipeline/
	$(GO) test -run 'xxx' -bench 'BatchedDispatch' -benchtime 3x ./internal/serve/
	$(GO) run ./cmd/pstlbench -mode native -fused -algo reduce -minexp 20 -maxexp 22 -filter chain
	$(GO) run ./cmd/pstlreport -exp ext-fusion -scale 4

# Run the algorithm-serving daemon on the local pool.
serve:
	$(GO) run ./cmd/pstld -addr :8080 -sched wfq

# Sharded serving tier: the 1-vs-4-shard router throughput benchmark, then
# the full ext-shard report (placement balance, modeled throughput scaling,
# and the real kill-and-replay durability run).
shard:
	$(GO) test -run 'xxx' -bench 'RouterThroughput' -benchtime 200x ./internal/shard/
	$(GO) run ./cmd/pstlreport -exp ext-shard -scale 4

# Distributed shard plane: the cluster package's transport and failover
# tests, then the full ext-cluster report (worker-death failover with the
# exactly-once checksum audit, and live ring growth's remap fraction).
cluster:
	$(GO) test ./internal/cluster/
	$(GO) run ./cmd/pstlreport -exp ext-cluster -scale 4

# Streaming plane: the flow package's replay-audit, backpressure, and
# shared-pool tests, then the full ext-stream report (exact comparison of
# a live stream against the sequential oracle, the 4x-burst backpressure
# bound, and the bursty-stream-beside-batch-tenant run) and a short live
# pstlstream run.
stream:
	$(GO) test ./internal/flow/
	$(GO) run ./cmd/pstlreport -exp ext-stream -scale 4
	$(GO) run ./cmd/pstlstream -replay 20000 -seed 7

# Observability: the disabled-path and enabled-path instrument benchmarks,
# then the full ext-obs report (span-based p99 attribution on a hot shard
# and span history across kill-and-replay).
obs:
	$(GO) test -run 'xxx' -bench 'MetricsDisabled|HistogramObserve|WindowsObserve' -benchtime 1000000x ./internal/obs/
	$(GO) run ./cmd/pstlreport -exp ext-obs

# Closed-loop load generator: a heavy and a light tenant on one pool;
# swap -sched fifo to see the light tenant's p99 blow up.
loadgen:
	$(GO) run ./cmd/pstld -loadgen -duration 2s -sched wfq \
		-spec "big:1:sort:1048576:4,small:1:reduce:65536:2"

check: vet build test race
