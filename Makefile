GO ?= go

.PHONY: all vet build test race bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the work-stealing scheduler
# and the algorithms that drive it.
race:
	$(GO) test -race ./internal/native/... ./internal/core/...

bench:
	$(GO) test -run 'xxx' -bench 'SchedulerOverhead' -benchtime 1000x .

check: vet build test race
