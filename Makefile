GO ?= go

.PHONY: all vet build test race bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the work-stealing scheduler,
# the algorithms that drive it, the event-tracing layer its workers write
# to, the simulator that emits virtual-time traces, and the adaptive
# grain tuner fed concurrently by harness observations.
race:
	$(GO) test -race ./internal/native/... ./internal/core/... ./internal/trace/... ./internal/simexec/... ./internal/tune/...

bench:
	$(GO) test -run 'xxx' -bench 'SchedulerOverhead' -benchtime 1000x .

check: vet build test race
