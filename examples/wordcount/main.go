// Wordcount: a map-reduce text pipeline built from the parallel
// algorithms — the workload class the paper's introduction motivates for
// the parallel STL (map via Transform, reduce via TransformReduce, group
// via Sort + run boundaries, top-k via PartialSort).
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"

	"pstlbench/internal/core"
	"pstlbench/internal/native"
	"pstlbench/internal/pipeline"
)

// vocabulary skews toward the front, Zipf-style, so the counts are
// interesting.
var vocabulary = []string{
	"the", "of", "and", "to", "in", "stream", "parallel", "stl", "backend",
	"thread", "scalability", "bandwidth", "cache", "numa", "speedup",
	"kernel", "benchmark", "allocator", "gpu", "compiler",
}

func synthesize(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	words := make([]string, n)
	for i := range words {
		// Quadratic skew: low ranks are much more frequent.
		r := rng.Float64()
		words[i] = vocabulary[int(r*r*float64(len(vocabulary)))]
	}
	return words
}

func main() {
	pool := native.New(runtime.GOMAXPROCS(0), native.StrategyStealing)
	defer pool.Close()
	p := core.Par(pool)

	const n = 1 << 19
	words := synthesize(n, 11)

	// Map: normalize tokens (uppercase stragglers, trimming) in parallel.
	core.Transform(p, words, words, strings.ToLower)

	// Filter: drop stop words with a parallel stable compaction.
	stop := map[string]bool{"the": true, "of": true, "and": true, "to": true, "in": true}
	kept := make([]string, n)
	k := core.CopyIf(p, kept, words, func(w string) bool { return !stop[w] })
	kept = kept[:k]
	fmt.Printf("tokens: %d total, %d after stop-word filter\n", n, k)

	// Reduce: total character volume. MapTo changes element type inside
	// the pipeline, so the length extraction fuses into the sum — the
	// lengths are never materialized.
	chars := pipeline.Sum(p, pipeline.MapTo(pipeline.From(kept),
		func(w string) int { return len(w) }), 0)
	fmt.Printf("volume: %d characters, mean word length %.2f\n", chars, float64(chars)/float64(k))

	// Group: sort, then find run boundaries in parallel; the boundary
	// index list is a CopyIf over positions.
	core.SortFunc(p, kept, func(a, b string) bool { return a < b })
	positions := make([]int, k)
	core.Generate(p, positions, func(i int) int { return i })
	starts := make([]int, k)
	b := core.CopyIf(p, starts, positions, func(i int) bool {
		return i == 0 || kept[i] != kept[i-1]
	})
	starts = starts[:b]

	type wc struct {
		word  string
		count int
	}
	counts := make([]wc, b)
	core.ForEachIndex(p, counts, func(i int, out *wc) {
		lo := starts[i]
		hi := k
		if i+1 < b {
			hi = starts[i+1]
		}
		*out = wc{word: kept[lo], count: hi - lo}
	})

	// Top-k: partial sort by descending count.
	top := 5
	if top > len(counts) {
		top = len(counts)
	}
	core.PartialSort(p, counts, top, func(a, b wc) bool { return a.count > b.count })
	fmt.Printf("distinct words: %d; top %d:\n", b, top)
	for _, c := range counts[:top] {
		fmt.Printf("  %-12s %7d\n", c.word, c.count)
	}

	// Sanity: counts must add back up to the filtered token count.
	total := core.TransformReduce(p, counts, 0,
		func(a, b int) int { return a + b },
		func(c wc) int { return c.count })
	fmt.Printf("checksum: counts sum to %d (want %d)\n", total, k)
}
