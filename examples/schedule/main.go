// Schedule: visualize the simulated task schedule of one benchmark
// invocation as a per-core Gantt chart — e.g. the wave structure of HPX's
// central queue versus TBB's stealing, or the merge rounds of a parallel
// sort.
//
//	go run ./examples/schedule
package main

import (
	"fmt"

	"pstlbench/internal/allocsim"
	"pstlbench/internal/backend"
	"pstlbench/internal/machine"
	"pstlbench/internal/report"
	"pstlbench/internal/simexec"
	"pstlbench/internal/skeleton"
)

func gantt(title string, m *machine.Machine, b *backend.Backend, op backend.Op, n int64, threads int) {
	r := simexec.Run(simexec.Config{
		Machine: m, Backend: b,
		Workload: skeleton.Workload{Op: op, N: n, ElemBytes: 8, Kit: 1, HitFrac: 0.6},
		Threads:  threads, Alloc: allocsim.FirstTouch,
		Trace: true,
	})
	rows := make([]report.GanttRow, threads)
	for c := range rows {
		rows[c].Label = fmt.Sprintf("core %2d", c)
	}
	for _, s := range r.Trace {
		mark := byte('0' + byte(s.Phase)%10)
		if s.Truncated {
			mark = 'x'
		}
		rows[s.Core].Spans = append(rows[s.Core].Spans, report.Span{Start: s.Start, End: s.End, Mark: mark})
	}
	g := report.Gantt{
		Title: fmt.Sprintf("%s — %s, %s, n=%d, %d threads (%d task spans, %s total)",
			title, b.ID, op, n, threads, len(r.Trace), fmtDur(r.Seconds)),
		Rows: rows,
	}
	fmt.Println(g.String())
}

func fmtDur(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fus", s*1e6)
	}
}

func main() {
	m := machine.MachA()
	// Digits mark the phase of each span; 'x' marks tasks truncated by
	// find's cancellation.
	gantt("parallel sort: leaf phase (0) + merge rounds (1..5)",
		m, backend.GCCTBB(), backend.OpSort, 1<<24, 8)
	gantt("two-phase scan: reduce pass (0) + rescan pass (1)",
		m, backend.GCCTBB(), backend.OpInclusiveScan, 1<<24, 8)
	gantt("early-exit find: cancellation truncates the losers",
		m, backend.GCCTBB(), backend.OpFind, 1<<24, 8)
	gantt("HPX central queue: serialized task starts",
		m, backend.GCCHPX(), backend.OpForEach, 1<<20, 8)
}
