// Quickstart: the five pSTL-Bench kernels through the library's public
// surface — parallel STL-style algorithms over an execution policy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"pstlbench/internal/core"
	"pstlbench/internal/native"
	"pstlbench/internal/pipeline"
)

func main() {
	// A policy is a pool plus a chunking grain — the Go counterpart of
	// std::execution::par with a backend choice.
	pool := native.New(runtime.GOMAXPROCS(0), native.StrategyStealing)
	defer pool.Close()
	par := core.Par(pool)
	seq := core.Seq()

	const n = 1 << 20
	data := make([]float64, n)
	core.Generate(par, data, func(i int) float64 { return float64(i + 1) })

	// X::reduce -- the sum of [1..n].
	sum := core.Sum(par, data, 0)
	fmt.Printf("reduce:         sum(1..%d) = %.0f\n", n, sum)

	// X::find -- locate a random element (paper Section 3.1).
	rng := rand.New(rand.NewSource(1))
	target := float64(rng.Intn(n) + 1)
	idx := core.Find(par, data, target)
	fmt.Printf("find:           value %.0f at index %d\n", target, idx)

	// X::for_each -- the paper's Listing 1 kernel with k_it = 64.
	kit := 64
	core.ForEach(par, data, func(v *float64) {
		var a float64
		for i := 0; i < kit; i++ {
			a++
		}
		*v = a
	})
	fmt.Printf("for_each:       every element is now %.0f\n", data[n/2])

	// X::inclusive_scan -- prefix sums.
	prefix := make([]float64, n)
	core.InclusiveSum(par, prefix, data)
	fmt.Printf("inclusive_scan: prefix[last] = %.0f (= %d * k_it)\n", prefix[n-1], n)

	// X::sort -- a shuffled permutation, timed parallel vs sequential.
	perm := make([]float64, n)
	core.Generate(par, perm, func(i int) float64 { return float64(i + 1) })
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	backup := append([]float64(nil), perm...)

	start := time.Now()
	core.Sort(par, perm)
	parTime := time.Since(start)

	start = time.Now()
	core.Sort(seq, backup)
	seqTime := time.Since(start)

	fmt.Printf("sort:           sorted = %v, parallel %v vs sequential %v\n",
		core.IsSorted(par, perm, func(a, b float64) bool { return a < b }), parTime, seqTime)

	// Fused pipelines: compose element-wise stages lazily and run them as
	// ONE chunk-granular pass — no intermediate arrays. The staged form of
	// sum(g(f(x))) below streams three arrays through memory; the fused
	// form reads the source once.
	pl := pipeline.From(data).
		Map(func(v float64) float64 { return v*3 + 1 }).
		Map(func(v float64) float64 { return v * 0.5 })

	start = time.Now()
	fusedSum := pipeline.Sum(par, pl, 0)
	fusedTime := time.Since(start)

	start = time.Now()
	tmp1 := make([]float64, n)
	core.Transform(par, tmp1, data, func(v float64) float64 { return v*3 + 1 })
	tmp2 := make([]float64, n)
	core.Transform(par, tmp2, tmp1, func(v float64) float64 { return v * 0.5 })
	stagedSum := core.Sum(par, tmp2, 0)
	stagedTime := time.Since(start)

	tr := pl.ModelTraffic(8, "reduce")
	fmt.Printf("pipeline:       sum = %.0f (staged %.0f), fused %v vs staged %v, modeled traffic %d vs %d MiB\n",
		fusedSum, stagedSum, fusedTime, stagedTime, tr.Fused>>20, tr.Staged>>20)
}
