// Analytics: a numeric time-series pipeline exercising the scan/sort side
// of the library — adjacent_difference for returns, inclusive_scan for
// cumulative sums, minmax/count/partition for descriptive statistics, and
// nth_element for percentiles without a full sort.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"pstlbench/internal/core"
	"pstlbench/internal/native"
	"pstlbench/internal/pipeline"
)

func main() {
	pool := native.New(runtime.GOMAXPROCS(0), native.StrategyForkJoin)
	defer pool.Close()
	p := core.Par(pool)

	// A synthetic random-walk "price" series.
	const n = 1 << 18
	rng := rand.New(rand.NewSource(3))
	steps := make([]float64, n)
	core.Generate(core.Seq(), steps, func(i int) float64 { return 0 })
	for i := range steps { // rng is not parallel-safe: sequential setup
		steps[i] = rng.NormFloat64()
	}
	prices := make([]float64, n)
	core.ExclusiveScan(p, prices, steps, 100, func(a, b float64) float64 { return a + b })

	// Point-to-point changes (adjacent_difference).
	returns := make([]float64, n)
	core.AdjacentDifference(p, returns, prices, func(cur, prev float64) float64 { return cur - prev })
	returns[0] = 0

	// Descriptive statistics.
	less := func(a, b float64) bool { return a < b }
	lo, hi := core.MinMaxElement(p, prices, less)
	mean := core.Sum(p, prices, 0) / n
	// Second moment as a fused pipeline: center and square run in one
	// pass over prices, never materializing the deviations.
	variance := pipeline.Sum(p, pipeline.From(prices).
		Map(func(v float64) float64 { return v - mean }).
		Map(func(d float64) float64 { return d * d }), 0) / n
	fmt.Printf("series:  n=%d  min=%.2f@%d  max=%.2f@%d\n", n, prices[lo], lo, prices[hi], hi)
	fmt.Printf("moments: mean=%.3f  stddev=%.3f\n", mean, math.Sqrt(variance))

	upDays := core.CountIf(p, returns, func(r float64) bool { return r > 0 })
	fmt.Printf("returns: %d up / %d down\n", upDays, n-upDays)

	// Longest sorted (monotone rising) prefix of the walk.
	fmt.Printf("monotone rising prefix: %d points\n", core.IsSortedUntil(p, prices, less))

	// Percentiles via nth_element on a copy (no full sort needed).
	work := append([]float64(nil), prices...)
	pct := func(q float64) float64 {
		k := int(q * float64(n-1))
		core.NthElement(p, work, k, less)
		return work[k]
	}
	fmt.Printf("percentiles: p05=%.2f  p50=%.2f  p95=%.2f\n", pct(0.05), pct(0.50), pct(0.95))

	// Partition the returns into calm and volatile regimes, stably.
	calm := append([]float64(nil), returns...)
	k := core.StablePartition(p, calm, func(r float64) bool { return math.Abs(r) < 1 })
	fmt.Printf("regimes: %d calm moves, %d volatile moves\n", k, n-k)

	// Cross-check: the scan of the differences reconstructs the walk
	// (inclusive_scan is the inverse of adjacent_difference).
	cum := make([]float64, n)
	core.InclusiveSum(p, cum, returns)
	diff := math.Abs(100 + cum[n-1] - prices[n-1])
	fmt.Printf("checksum: start + cumulative return = %.3f, final price = %.3f (diff %.1e)\n",
		100+cum[n-1], prices[n-1], diff)
}
