// Monte-Carlo π: a compute-bound for_each in the spirit of the paper's
// k_it=1000 configuration — when arithmetic intensity is high, parallel
// execution approaches ideal speedup even on modest machines, while at low
// intensity the scheduling overhead dominates.
//
//	go run ./examples/montecarlo
package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"pstlbench/internal/core"
	"pstlbench/internal/native"
	"pstlbench/internal/pipeline"
)

// trial runs `rounds` pseudo-random dart throws seeded by the index and
// returns how many landed inside the unit circle. The per-element work is
// the "computational intensity" dial of the paper's for_each kernel.
func trial(idx, rounds int) int {
	// SplitMix64 keeps the kernel deterministic and allocation-free.
	state := uint64(idx)*0x9E3779B97F4A7C15 + 1
	next := func() float64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
	in := 0
	for i := 0; i < rounds; i++ {
		x, y := next(), next()
		if x*x+y*y <= 1 {
			in++
		}
	}
	return in
}

func main() {
	workers := runtime.GOMAXPROCS(0)
	pool := native.New(workers, native.StrategyStealing)
	defer pool.Close()
	par := core.Par(pool)
	seq := core.Seq()

	const cells = 1 << 14
	fmt.Printf("monte-carlo pi with %d cells on %d workers\n", cells, workers)
	fmt.Printf("%-10s  %-12s  %-12s  %-8s  %s\n", "rounds", "sequential", "parallel", "speedup", "pi")

	for _, rounds := range []int{16, 256, 4096} {
		// Generate -> Sum is a fully fused pipeline: the trial results
		// are consumed by the reduction as they are produced, so no hits
		// array ever exists.
		rounds := rounds
		pl := pipeline.Generate(cells, func(i int) int { return trial(i, rounds) })
		var inside int
		run := func(p core.Policy) time.Duration {
			start := time.Now()
			inside = pipeline.Sum(p, pl, 0)
			return time.Since(start)
		}
		seqT := run(seq)
		parT := run(par)
		pi := 4 * float64(inside) / float64(cells*rounds)
		fmt.Printf("%-10d  %-12v  %-12v  %-8.2f  %.4f (err %.5f)\n",
			rounds, seqT, parT, float64(seqT)/float64(parT), pi, math.Abs(pi-math.Pi))
	}
}
