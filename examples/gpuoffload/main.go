// GPU offload: the chained-calls scenario of the paper's Figure 9 on the
// simulated Tesla T4 and Ampere A2 — repeated reductions are
// communication-bound when the host touches the data between calls, and
// device-bound once the data stays resident.
//
//	go run ./examples/gpuoffload
package main

import (
	"fmt"

	"pstlbench/internal/backend"
	"pstlbench/internal/gpusim"
	"pstlbench/internal/machine"
	"pstlbench/internal/skeleton"
)

func main() {
	const n = 1 << 26 // 64M floats = 256 MiB
	const chain = 8   // chained reduce calls

	for _, m := range machine.GPUs() {
		gpu := m.GPU
		fmt.Printf("%s (%s, %d CUDA cores, %.0f GB/s device)\n",
			m.Name, gpu.Name, gpu.SMs*gpu.CoresPerSM, gpu.DeviceBW)
		w := skeleton.Workload{Op: backend.OpReduce, N: n, ElemBytes: 4, Kit: 1}

		// Scenario A (Fig 9a): the host consumes the data between calls,
		// so every call migrates the array in and back out.
		totalA := 0.0
		for c := 0; c < chain; c++ {
			br := gpusim.Run(gpu, w, gpusim.Options{TransferBack: true})
			totalA += br.Total()
			if c == 0 {
				fmt.Printf("  per call w/ transfers : H2D %.2fms + kernel %.3fms + D2H %.2fms\n",
					br.HostToDevice*1e3, br.Kernel*1e3, br.DeviceToHost*1e3)
			}
		}

		// Scenario B (Fig 9b): calls chain on the device; only the first
		// call pays the migration.
		totalB := 0.0
		for c := 0; c < chain; c++ {
			br := gpusim.Run(gpu, w, gpusim.Options{DataResident: c > 0})
			totalB += br.Total()
		}

		fmt.Printf("  %d chained reduces     : with transfers %.1fms, resident %.1fms (%.1fx)\n",
			chain, totalA*1e3, totalB*1e3, totalA/totalB)

		// The volatile quirk (Section 5.8): for double, nvc++ deletes the
		// k_it loop below the magic number 65001.
		fmt.Printf("  volatile quirk        : double k_it=1000 -> effective %d; float k_it=1000 -> %d\n",
			gpusim.EffectiveKit(8, 1000), gpusim.EffectiveKit(4, 1000))
		fmt.Println()
	}
}
